package board

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"yukta/internal/workload"
)

// Placement is the thread-scheduling decision the OS layer actuates on: how
// many threads go to the big cluster (the rest run on the little cluster)
// and the average number of threads packed onto each non-idle core of each
// cluster (paper Table III).
type Placement struct {
	// ThreadsBig is the number of threads assigned to the big cluster.
	ThreadsBig int
	// ThreadsLittle records the OS layer's intent for the little cluster;
	// the physics derives the actual little-cluster load from the workload's
	// runnable threads minus ThreadsBig, but hardware controllers read this
	// field as the coordination signal.
	ThreadsLittle int
	// ThreadsPerBigCore is the average thread packing per busy big core.
	ThreadsPerBigCore float64
	// ThreadsPerLittleCore is the average packing per busy little core.
	ThreadsPerLittleCore float64
}

// Sensors is what the board exposes to controllers at a control interval:
// the 260 ms power sensor readings, the hot-spot temperature, and
// perf-counter instruction rates accumulated since the previous control
// invocation.
type Sensors struct {
	// TimeS is the simulated wall-clock time of the reading, in seconds.
	TimeS float64

	// BigPowerW and LittlePowerW are the held values of the power sensors
	// (they update every Config.PowerSensorPeriod). Under fault injection a
	// dropped reading is reported as NaN and a stale reading repeats an
	// earlier window's value.
	BigPowerW, LittlePowerW float64

	// TempC is the hot-spot temperature reading in °C.
	TempC float64

	// BIPS values are derived from performance counters over the last
	// control interval.
	BIPS, BIPSBig, BIPSLittle float64

	// Throttled reports whether firmware emergency throttling is currently
	// engaged on either cluster.
	Throttled bool

	// ThermalThrottled reports whether specifically the thermal emergency
	// path is engaged (the per-path trip state is readable on real boards via
	// the cooling-device sysfs). A thermal emergency reported while the
	// temperature reading is cool is the signature of a misreading diode or
	// an externally forced cap — the supervisory layer keys on exactly that
	// inconsistency.
	ThermalThrottled bool

	// EmergencyEvents counts firmware emergency activations so far.
	EmergencyEvents int

	// PowerCapW is the board power budget currently imposed by the fleet
	// layer (0 = uncapped). It is part of the sensor vocabulary so fleet
	// budget policies and per-board controllers read the same view.
	PowerCapW float64

	// BudgetThrottled reports whether the budget governor is holding the
	// big-cluster frequency ceiling below maximum to enforce PowerCapW.
	// Distinct from Throttled: budget capping is an expected, externally
	// imposed constraint, not a firmware emergency.
	BudgetThrottled bool
}

// SensorTap intercepts the sensor view a controller receives at the end of
// a control interval. The board's internal physics and latched sensor state
// are never modified — only the Sensors struct handed to the caller of Run
// passes through the tap. The fault-injection layer uses this to model
// noisy, dropped and stale sensor readings (DESIGN.md "Fault model").
type SensorTap interface {
	// TapSensors receives the clean sensor view and returns the (possibly
	// corrupted) view the controller will observe.
	TapSensors(s Sensors) Sensors
}

// ActuatorTap intercepts actuator writes on their way to the board, so a
// fault layer can model lagging, lost or misapplied DVFS/hotplug commands.
// Each method receives the requested value (already clamped/quantized to the
// actuator's grid), the value currently in effect, and — for frequencies —
// the DVFS step size; it returns the value that actually takes effect. The
// board re-clamps and re-quantizes the returned value, so a tap can never
// drive an actuator outside its physical range.
type ActuatorTap interface {
	// TapBigCores intercepts big-cluster hotplug writes.
	TapBigCores(requested, current int) int
	// TapLittleCores intercepts little-cluster hotplug writes.
	TapLittleCores(requested, current int) int
	// TapBigFreq intercepts big-cluster DVFS writes (GHz).
	TapBigFreq(requested, current, step float64) float64
	// TapLittleFreq intercepts little-cluster DVFS writes (GHz).
	TapLittleFreq(requested, current, step float64) float64
}

// Board is a simulated ODROID XU3.
type Board struct {
	cfg Config

	// Actuator state (what cpufreq/hotplug files would hold).
	bigCores, littleCores int
	bigFreq, littleFreq   float64
	place                 Placement

	// Physics state.
	tempC   float64
	nowS    float64
	energyJ float64

	// Sensor state.
	sensedBigW, sensedLittleW float64
	windowBigE, windowLittleE float64 // energy in current sensor window
	windowStartS              float64

	// Perf counters.
	instTotal, instBig, instLittle float64 // Ginst, cumulative

	// Migration bookkeeping.
	migStallS float64

	noise *rand.Rand

	// Fault-injection taps (nil = clean board).
	sensorTap SensorTap
	actTap    ActuatorTap

	// actMismatches counts actuator writes whose applied value differed from
	// the requested one (see ActuatorMismatches).
	actMismatches int

	tmu    tmu
	budget budget
}

// New returns a board in its power-on state: all cores online at maximum
// frequency, ambient temperature.
func New(cfg Config) *Board {
	b := &Board{
		cfg:         cfg,
		bigCores:    cfg.Big.MaxCores,
		littleCores: cfg.Little.MaxCores,
		bigFreq:     cfg.Big.FreqMaxGHz,
		littleFreq:  cfg.Little.FreqMaxGHz,
		tempC:       cfg.AmbientC,
		place: Placement{
			ThreadsBig:           0,
			ThreadsPerBigCore:    1,
			ThreadsPerLittleCore: 1,
		},
	}
	if cfg.SensorNoiseStd > 0 {
		b.noise = rand.New(rand.NewSource(cfg.SensorNoiseSeed + 1))
	}
	b.tmu = newTMU(cfg)
	b.budget = newBudget(cfg)
	return b
}

// Config returns the board's configuration.
func (b *Board) Config() Config { return b.cfg }

// AttachSensorTap installs t on the sensor read path (nil detaches). The tap
// sees every Sensors struct Run returns, in order, exactly once per control
// interval.
func (b *Board) AttachSensorTap(t SensorTap) { b.sensorTap = t }

// AttachActuatorTap installs t on the actuator write path (nil detaches).
// The tap sees every SetBigCores/SetLittleCores/SetBigFreq/SetLittleFreq
// call, in call order.
func (b *Board) AttachActuatorTap(t ActuatorTap) { b.actTap = t }

// ForceEmergencyThrottle makes the firmware treat the next d of simulated
// time as a sustained thermal violation, regardless of the actual hot-spot
// temperature — the fault model's forced TMU emergency-throttle event. The
// usual firmware dynamics apply: the violation must persist for
// EmergencyHold before the cap engages, and after the forced window passes
// (and the real temperature is safe) the cap releases one step at a time.
func (b *Board) ForceEmergencyThrottle(d time.Duration) {
	if d > 0 {
		b.tmu.forcedS += d.Seconds()
	}
}

// quantizeFreq clamps f into the cluster's range and rounds to the step grid.
func quantizeFreq(c ClusterConfig, f float64) float64 {
	if f < c.FreqMinGHz {
		f = c.FreqMinGHz
	}
	if f > c.FreqMaxGHz {
		f = c.FreqMaxGHz
	}
	steps := math.Round((f - c.FreqMinGHz) / c.FreqStepGHz)
	// Round to a clean multiple: operating points are exact firmware table
	// entries, not accumulated floating-point sums.
	return math.Round((c.FreqMinGHz+steps*c.FreqStepGHz)*1e6) / 1e6
}

// SetBigCores hotplugs the big cluster to n cores (1..4).
func (b *Board) SetBigCores(n int) {
	r := clampInt(n, 1, b.cfg.Big.MaxCores)
	n = r
	if b.actTap != nil {
		n = clampInt(b.actTap.TapBigCores(n, b.bigCores), 1, b.cfg.Big.MaxCores)
	}
	if n != r {
		b.actMismatches++
	}
	b.bigCores = n
}

// SetLittleCores hotplugs the little cluster to n cores (1..4).
func (b *Board) SetLittleCores(n int) {
	r := clampInt(n, 1, b.cfg.Little.MaxCores)
	n = r
	if b.actTap != nil {
		n = clampInt(b.actTap.TapLittleCores(n, b.littleCores), 1, b.cfg.Little.MaxCores)
	}
	if n != r {
		b.actMismatches++
	}
	b.littleCores = n
}

// SetBigFreq requests a big-cluster frequency in GHz; the value is clamped
// and quantized to the DVFS grid. An actual change stalls the board briefly
// (the PLL relock / voltage ramp of a real cpufreq transition).
func (b *Board) SetBigFreq(ghz float64) {
	r := quantizeFreq(b.cfg.Big, ghz)
	f := r
	if b.actTap != nil {
		f = quantizeFreq(b.cfg.Big, b.actTap.TapBigFreq(f, b.bigFreq, b.cfg.Big.FreqStepGHz))
	}
	if f != r {
		b.actMismatches++
	}
	if f != b.bigFreq {
		b.migStallS += b.cfg.DVFSTransition.Seconds()
	}
	b.bigFreq = f
}

// SetLittleFreq requests a little-cluster frequency in GHz.
func (b *Board) SetLittleFreq(ghz float64) {
	r := quantizeFreq(b.cfg.Little, ghz)
	f := r
	if b.actTap != nil {
		f = quantizeFreq(b.cfg.Little, b.actTap.TapLittleFreq(f, b.littleFreq, b.cfg.Little.FreqStepGHz))
	}
	if f != r {
		b.actMismatches++
	}
	if f != b.littleFreq {
		b.migStallS += b.cfg.DVFSTransition.Seconds()
	}
	b.littleFreq = f
}

// ActuatorMismatches counts actuator writes whose applied value differed
// from the (clamped, quantized) requested value — the read-back verification
// a real governor performs against sysfs after each write. On a clean board
// the applied value is the requested value by construction, so a non-zero
// delta across a control interval is positive evidence of an actuation
// fault (a lost or misapplied DVFS/hotplug command).
func (b *Board) ActuatorMismatches() int { return b.actMismatches }

// ActuatorState is a read-only snapshot of the board's operating point:
// the commanded (requested) actuator settings next to the applied
// (effective, post-firmware-cap) ones, plus the thread placement split. The
// flight recorder captures one per control interval — the commanded/applied
// divergence is how firmware overrides show up in a trace.
type ActuatorState struct {
	// BigCores and LittleCores are the hotplug states per cluster.
	BigCores, LittleCores int
	// BigFreqGHz and LittleFreqGHz are the requested frequencies (GHz).
	BigFreqGHz, LittleFreqGHz float64
	// EffBigFreqGHz and EffLittleFreqGHz are the applied frequencies after
	// firmware throttle caps (GHz).
	EffBigFreqGHz, EffLittleFreqGHz float64
	// ThreadsBig is the number of threads placed on the big cluster.
	ThreadsBig int
}

// ActuatorState snapshots the commanded-vs-applied operating point.
func (b *Board) ActuatorState() ActuatorState {
	return ActuatorState{
		BigCores:         b.bigCores,
		LittleCores:      b.littleCores,
		BigFreqGHz:       b.bigFreq,
		LittleFreqGHz:    b.littleFreq,
		EffBigFreqGHz:    b.EffectiveBigFreq(),
		EffLittleFreqGHz: b.EffectiveLittleFreq(),
		ThreadsBig:       b.place.ThreadsBig,
	}
}

// BigCores returns the hotplug state of the big cluster.
func (b *Board) BigCores() int { return b.bigCores }

// LittleCores returns the hotplug state of the little cluster.
func (b *Board) LittleCores() int { return b.littleCores }

// BigFreq returns the requested big-cluster frequency (GHz).
func (b *Board) BigFreq() float64 { return b.bigFreq }

// LittleFreq returns the requested little-cluster frequency (GHz).
func (b *Board) LittleFreq() float64 { return b.littleFreq }

// EffectiveBigFreq returns the frequency after firmware throttle caps and
// the fleet budget-governor ceiling (the minimum of all three authorities).
func (b *Board) EffectiveBigFreq() float64 {
	return math.Min(math.Min(b.bigFreq, b.tmu.bigCap), b.budget.capGHz)
}

// EffectiveLittleFreq returns the little frequency after firmware caps.
func (b *Board) EffectiveLittleFreq() float64 { return math.Min(b.littleFreq, b.tmu.littleCap) }

// Place sets the thread placement. Changing the placement charges the
// migration penalty for every thread whose cluster assignment changes.
func (b *Board) Place(p Placement) {
	if p.ThreadsPerBigCore < 1 {
		p.ThreadsPerBigCore = 1
	}
	if p.ThreadsPerLittleCore < 1 {
		p.ThreadsPerLittleCore = 1
	}
	if p.ThreadsBig < 0 {
		p.ThreadsBig = 0
	}
	if p.ThreadsLittle < 0 {
		p.ThreadsLittle = 0
	}
	moved := absInt(p.ThreadsBig - b.place.ThreadsBig)
	b.migStallS += float64(moved) * b.cfg.MigrationPenalty.Seconds()
	b.place = p
}

// ChargeMigrations charges the migration/cache-warmup penalty for n thread
// migrations that occurred without a placement-count change (e.g. a
// round-robin scheduler rotating thread-to-core assignments).
func (b *Board) ChargeMigrations(n int) {
	if n > 0 {
		b.migStallS += float64(n) * b.cfg.MigrationPenalty.Seconds()
	}
}

// Placement returns the current thread placement.
func (b *Board) Placement() Placement { return b.place }

// TimeS returns the simulated wall-clock time in seconds.
func (b *Board) TimeS() float64 { return b.nowS }

// EnergyJ returns the cumulative energy in joules.
func (b *Board) EnergyJ() float64 { return b.energyJ }

// TempC returns the instantaneous hot-spot temperature.
func (b *Board) TempC() float64 { return b.tempC }

// clusterState captures the per-step operating point of one cluster.
type clusterState struct {
	threads   int
	busyCores int
	tpc       float64 // threads per busy core
	rateGIPS  float64 // instructions per second (billions)
	powerW    float64
}

// evalCluster computes instruction rate and power for one cluster.
func (b *Board) evalCluster(c ClusterConfig, coresOn int, freq float64, threads int,
	tpcWanted float64, ipc, memBound float64, totalBusy int) clusterState {

	st := clusterState{threads: threads}
	v := c.VoltBase + c.VoltPerGHz*freq

	busy := 0
	if threads > 0 {
		busy = int(math.Ceil(float64(threads) / tpcWanted))
		busy = clampInt(busy, 1, coresOn)
	}
	st.busyCores = busy
	if busy > 0 {
		st.tpc = float64(threads) / float64(busy)
	}

	// Memory-boundedness inflated by bandwidth contention across all busy
	// cores on the chip.
	mb := memBound * (1 + b.cfg.MemContentionPerCore*float64(maxInt(totalBusy-1, 0)))
	if mb > 0.92 {
		mb = 0.92
	}

	// Roofline per-core rate: ipc*f at the reference frequency, saturating
	// toward the bandwidth ceiling as f grows.
	var ratePerCore float64
	if busy > 0 && ipc > 0 {
		ratePerCore = ipc * freq / ((1 - mb) + mb*freq/c.RefFreqGHz)
	}
	mux := 1.0
	if st.tpc > 1 {
		mux = math.Pow(b.cfg.MuxEfficiency, st.tpc-1)
	}
	st.rateGIPS = float64(busy) * ratePerCore * mux

	// Power: busy cores burn full dynamic power weighted by stall activity;
	// idle-but-on cores burn the idle activity; all on cores leak.
	activity := (1 - mb) + mb*c.StallPowerFactor
	pBusy := float64(busy) * c.CdynWPerV2GHz * v * v * freq * activity
	pIdle := float64(coresOn-busy) * c.CdynWPerV2GHz * v * v * freq * c.IdleActivity
	leak := float64(coresOn) * c.StaticBaseW * math.Exp((b.tempC-50)/c.StaticTempScaleC)
	st.powerW = pBusy + pIdle + leak
	return st
}

// Run advances the board by dt while executing w, and returns the sensor
// view a controller invoked at the end of the interval would observe.
func (b *Board) Run(w workload.Workload, dt time.Duration) Sensors {
	stepS := b.cfg.SimStep.Seconds()
	nSteps := int(math.Round(dt.Seconds() / stepS))
	if nSteps < 1 {
		nSteps = 1
	}
	var instT, instB, instL float64
	for i := 0; i < nSteps; i++ {
		p := w.Profile()
		threads := p.Threads

		threadsBig := clampInt(b.place.ThreadsBig, 0, threads)
		threadsLittle := threads - threadsBig

		fBig := b.EffectiveBigFreq()
		fLittle := b.EffectiveLittleFreq()

		// First pass estimates busy cores for contention.
		estBusyBig := 0
		if threadsBig > 0 {
			estBusyBig = clampInt(int(math.Ceil(float64(threadsBig)/b.place.ThreadsPerBigCore)), 1, b.bigCores)
		}
		estBusyLittle := 0
		if threadsLittle > 0 {
			estBusyLittle = clampInt(int(math.Ceil(float64(threadsLittle)/b.place.ThreadsPerLittleCore)), 1, b.littleCores)
		}
		totalBusy := estBusyBig + estBusyLittle

		big := b.evalCluster(b.cfg.Big, b.bigCores, fBig, threadsBig,
			b.place.ThreadsPerBigCore, p.IPCBig, p.MemBound, totalBusy)
		little := b.evalCluster(b.cfg.Little, b.littleCores, fLittle, threadsLittle,
			b.place.ThreadsPerLittleCore, p.IPCLittle, p.MemBound, totalBusy)

		// Migration stalls eat into this step's execution.
		execS := stepS
		if b.migStallS > 0 {
			if b.migStallS >= stepS {
				b.migStallS -= stepS
				execS = 0
			} else {
				execS = stepS - b.migStallS
				b.migStallS = 0
			}
		}

		gB := big.rateGIPS * execS
		gL := little.rateGIPS * execS
		w.Advance(gB + gL)
		instB += gB
		instL += gL
		instT += gB + gL

		pTotal := big.powerW + little.powerW + b.cfg.BasePowerW
		b.energyJ += pTotal * stepS
		b.windowBigE += big.powerW * stepS
		b.windowLittleE += little.powerW * stepS

		// Thermal RC integration.
		tss := b.cfg.AmbientC + b.cfg.ThermalRCW*pTotal
		b.tempC += stepS * (tss - b.tempC) / b.cfg.ThermalTauS

		b.nowS += stepS

		// Power sensors latch the window average every sensor period.
		if b.nowS-b.windowStartS >= b.cfg.PowerSensorPeriod.Seconds()-1e-9 {
			win := b.nowS - b.windowStartS
			b.sensedBigW = b.windowBigE / win
			b.sensedLittleW = b.windowLittleE / win
			if b.noise != nil {
				b.sensedBigW = math.Max(0, b.sensedBigW+b.noise.NormFloat64()*b.cfg.SensorNoiseStd)
				b.sensedLittleW = math.Max(0, b.sensedLittleW+b.noise.NormFloat64()*b.cfg.SensorNoiseStd/10)
			}
			b.windowBigE, b.windowLittleE = 0, 0
			b.windowStartS = b.nowS
		}

		// Firmware emergency management sees instantaneous physics.
		b.tmu.step(b, big.powerW, little.powerW, stepS)
		// The budget governor enforces the board-level power cap on the
		// total draw, after (and never overriding) the emergency paths.
		b.budget.step(b, pTotal, stepS)
	}
	b.instTotal += instT
	b.instBig += instB
	b.instLittle += instL

	intervalS := float64(nSteps) * stepS
	tempRead := b.tempC
	if b.noise != nil {
		tempRead += b.noise.NormFloat64() * b.cfg.SensorNoiseStd / 10
	}
	s := Sensors{
		TimeS:            b.nowS,
		BigPowerW:        b.sensedBigW,
		LittlePowerW:     b.sensedLittleW,
		TempC:            tempRead,
		BIPS:             instT / intervalS,
		BIPSBig:          instB / intervalS,
		BIPSLittle:       instL / intervalS,
		Throttled:        b.tmu.engagedBig || b.tmu.engagedLittle || b.tmu.engagedTemp,
		ThermalThrottled: b.tmu.engagedTemp,
		EmergencyEvents:  b.tmu.events,
		PowerCapW:        b.budget.capW,
		BudgetThrottled:  b.budget.engaged,
	}
	if b.sensorTap != nil {
		s = b.sensorTap.TapSensors(s)
	}
	return s
}

// String summarizes the board state for logs.
func (b *Board) String() string {
	return fmt.Sprintf("board[t=%.1fs big=%dc@%.1fGHz little=%dc@%.1fGHz T=%.1fC E=%.1fJ]",
		b.nowS, b.bigCores, b.bigFreq, b.littleCores, b.littleFreq, b.tempC, b.energyJ)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
