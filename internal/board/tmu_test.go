package board

import (
	"testing"
	"time"

	"yukta/internal/workload"
)

// hotApp returns a compute-bound 8-thread app that drives the big cluster
// well past the emergency thresholds at full tilt.
func hotApp(t *testing.T) *workload.App {
	t.Helper()
	a, err := workload.NewApp("hot", "TEST", 1e6, []workload.Phase{
		{WorkFrac: 1, Threads: 8, MemBound: 0.05, IPCBig: 1.8, IPCLittle: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTMUSustainedViolationRequired(t *testing.T) {
	// A short power spike must not trip the firmware: the violation has to
	// persist for EmergencyHold.
	cfg := DefaultConfig()
	b := New(cfg)
	w := hotApp(t)
	b.Place(Placement{ThreadsBig: 8, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	// Run hot for less than the hold time, then drop to a safe point.
	b.Run(w, cfg.EmergencyHold/2)
	b.SetBigFreq(0.8)
	s := b.Run(w, 2*time.Second)
	if s.EmergencyEvents != 0 {
		t.Fatalf("spike shorter than the hold period tripped the firmware (%d events)", s.EmergencyEvents)
	}
}

func TestTMUThrottleAndRelease(t *testing.T) {
	cfg := DefaultConfig()
	b := New(cfg)
	w := hotApp(t)
	b.Place(Placement{ThreadsBig: 8, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	// Sustained full blast: firmware must engage and cap the frequency.
	var s Sensors
	for i := 0; i < 20; i++ {
		s = b.Run(w, 500*time.Millisecond)
	}
	if s.EmergencyEvents == 0 || !s.Throttled {
		t.Fatalf("firmware did not engage under sustained violation (events=%d)", s.EmergencyEvents)
	}
	capped := b.EffectiveBigFreq()
	if capped >= cfg.Big.FreqMaxGHz {
		t.Fatal("no frequency cap applied")
	}
	// Back off to a clearly safe operating point: the cap must release
	// gradually and eventually clear.
	b.SetBigFreq(0.6)
	b.SetBigCores(1)
	for i := 0; i < 120; i++ {
		s = b.Run(w, 500*time.Millisecond)
		if !s.Throttled {
			break
		}
	}
	if s.Throttled {
		t.Fatalf("cap never released after sustained safe operation (eff=%v)", b.EffectiveBigFreq())
	}
	// After release the requested frequency is honoured again.
	b.SetBigFreq(1.0)
	if got := b.EffectiveBigFreq(); got != 1.0 {
		t.Fatalf("effective frequency %v after release, want 1.0", got)
	}
}

func TestTMULittleClusterIndependent(t *testing.T) {
	// Overdriving only the little cluster must cap little, not big.
	cfg := DefaultConfig()
	cfg.LittlePowerEmergencyW = 0.05 // force a little-cluster violation
	b := New(cfg)
	w := hotApp(t)
	b.SetBigFreq(0.5)
	b.SetBigCores(1)
	b.Place(Placement{ThreadsBig: 0, ThreadsLittle: 8, ThreadsPerBigCore: 1, ThreadsPerLittleCore: 2})
	var s Sensors
	for i := 0; i < 20; i++ {
		s = b.Run(w, 500*time.Millisecond)
	}
	if s.EmergencyEvents == 0 {
		t.Fatal("little-cluster violation not detected")
	}
	if b.EffectiveLittleFreq() >= cfg.Little.FreqMaxGHz {
		t.Fatal("little cluster not capped")
	}
	if b.EffectiveBigFreq() < b.BigFreq() {
		t.Fatal("big cluster capped by a little-cluster violation")
	}
}

func TestThermalEmergencyCapsBig(t *testing.T) {
	// Force a thermal violation with modest power by raising the thermal
	// resistance: the firmware's thermal path must cap the big cluster.
	cfg := DefaultConfig()
	cfg.ThermalRCW = 20
	b := New(cfg)
	w := hotApp(t)
	b.Place(Placement{ThreadsBig: 8, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	b.SetBigFreq(1.2) // below the power threshold at 4 cores…
	var s Sensors
	for i := 0; i < 120; i++ {
		s = b.Run(w, 500*time.Millisecond)
		if s.Throttled {
			break
		}
	}
	if !s.Throttled {
		t.Fatalf("thermal emergency never engaged at T=%.1f", s.TempC)
	}
	if b.EffectiveBigFreq() >= 1.2 {
		t.Fatal("thermal emergency did not cap the big cluster")
	}
}

func TestSensorWindowAveraging(t *testing.T) {
	// The power sensor reports the average over its update window, so a
	// half-window burst shows up diluted.
	cfg := DefaultConfig()
	b := New(cfg)
	w := hotApp(t)
	b.Place(Placement{ThreadsBig: 8, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	b.SetBigFreq(2.0)
	s := b.Run(w, 2*time.Second)
	high := s.BigPowerW
	b.SetBigFreq(0.2)
	s = b.Run(w, 2*time.Second)
	low := s.BigPowerW
	if high <= low {
		t.Fatalf("sensor did not track power: high=%v low=%v", high, low)
	}
	if low <= 0 {
		t.Fatal("sensor reads zero under load")
	}
}

func TestBoardStringer(t *testing.T) {
	b := New(DefaultConfig())
	if s := b.String(); len(s) < 10 {
		t.Fatalf("String() too short: %q", s)
	}
}

func TestDVFSTransitionStall(t *testing.T) {
	// Thrashing the frequency every interval loses throughput relative to a
	// steady setting at the average frequency.
	run := func(thrash bool) float64 {
		cfg := DefaultConfig()
		cfg.DVFSTransition = 20 * time.Millisecond // exaggerate for the test
		b := New(cfg)
		w := hotApp(t)
		b.SetBigCores(2)
		b.Place(Placement{ThreadsBig: 8, ThreadsPerBigCore: 4, ThreadsPerLittleCore: 1})
		var total float64
		for i := 0; i < 40; i++ {
			if thrash {
				if i%2 == 0 {
					b.SetBigFreq(1.0)
				} else {
					b.SetBigFreq(1.2)
				}
			} else {
				b.SetBigFreq(1.1)
			}
			s := b.Run(w, 500*time.Millisecond)
			total += s.BIPS
		}
		return total
	}
	steady := run(false)
	thrash := run(true)
	if thrash >= steady {
		t.Fatalf("DVFS thrash (%v) should not beat steady (%v)", thrash, steady)
	}
}

func TestForcedEmergencyThrottleEngagesAndRecovers(t *testing.T) {
	// A forced thermal event at a safe operating point must walk through the
	// normal firmware dynamics: hold before engaging, cap while forced, and
	// step-wise release once the forced window has passed.
	cfg := DefaultConfig()
	b := New(cfg)
	w := hotApp(t)
	b.SetBigCores(2)
	b.SetBigFreq(1.0)
	b.Place(Placement{ThreadsBig: 4, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	// Settle well below every real threshold first.
	s := b.Run(w, 4*time.Second)
	if s.Throttled || s.EmergencyEvents != 0 {
		t.Fatalf("operating point not safe before forcing (events=%d)", s.EmergencyEvents)
	}

	b.ForceEmergencyThrottle(5 * time.Second)
	for i := 0; i < 10; i++ {
		s = b.Run(w, 500*time.Millisecond)
	}
	if s.EmergencyEvents == 0 || !s.Throttled {
		t.Fatalf("forced violation did not engage the firmware (events=%d)", s.EmergencyEvents)
	}
	if b.EffectiveBigFreq() >= 1.0 {
		t.Fatalf("forced thermal emergency did not cap the big cluster (eff=%v)", b.EffectiveBigFreq())
	}
	capped := b.EffectiveBigFreq()

	// After the forced window the real temperature is still safe, so the cap
	// must release gradually and fully recover.
	released := false
	for i := 0; i < 60; i++ {
		s = b.Run(w, 500*time.Millisecond)
		if !s.Throttled {
			released = true
			break
		}
	}
	if !released {
		t.Fatalf("cap never released after the forced window (eff=%v)", b.EffectiveBigFreq())
	}
	if b.EffectiveBigFreq() <= capped {
		t.Fatal("effective frequency did not recover after release")
	}
	if got := b.EffectiveBigFreq(); got != 1.0 {
		t.Fatalf("effective frequency %v after recovery, want the requested 1.0", got)
	}
}

func TestForcedThrottleShorterThanHoldIsIgnored(t *testing.T) {
	// The firmware needs a sustained violation: a forced event shorter than
	// EmergencyHold must not trip it.
	cfg := DefaultConfig()
	b := New(cfg)
	w := hotApp(t)
	b.SetBigCores(2)
	b.SetBigFreq(1.0)
	b.Place(Placement{ThreadsBig: 4, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	b.Run(w, 4*time.Second)

	b.ForceEmergencyThrottle(cfg.EmergencyHold / 2)
	var s Sensors
	for i := 0; i < 10; i++ {
		s = b.Run(w, 500*time.Millisecond)
	}
	if s.EmergencyEvents != 0 || s.Throttled {
		t.Fatalf("sub-hold forced event tripped the firmware (events=%d)", s.EmergencyEvents)
	}
	// Non-positive durations are ignored outright.
	b.ForceEmergencyThrottle(0)
	b.ForceEmergencyThrottle(-time.Second)
	if s = b.Run(w, time.Second); s.EmergencyEvents != 0 {
		t.Fatal("non-positive forced duration tripped the firmware")
	}
}

func TestForcedThrottleDurationsAccumulate(t *testing.T) {
	// Two forced events whose union is sustained must engage even though each
	// alone is shorter than the hold.
	cfg := DefaultConfig()
	b := New(cfg)
	w := hotApp(t)
	b.SetBigCores(2)
	b.SetBigFreq(1.0)
	b.Place(Placement{ThreadsBig: 4, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	b.Run(w, 4*time.Second)

	b.ForceEmergencyThrottle(600 * time.Millisecond)
	b.ForceEmergencyThrottle(600 * time.Millisecond)
	var s Sensors
	for i := 0; i < 6; i++ {
		s = b.Run(w, 500*time.Millisecond)
	}
	if s.EmergencyEvents == 0 {
		t.Fatal("back-to-back forced events did not accumulate into a sustained violation")
	}
}
