package board

import "math"

// tmu models the Exynos firmware emergency heuristics (paper §V-A and
// [57][58][59]): when a cluster's power or the hot-spot temperature stays
// beyond a preset threshold for an extended period, the firmware caps the
// cluster frequency, stepping it down until the violation clears; after the
// signal stays below the threshold (with hysteresis) for a release delay,
// the cap is raised back one step at a time. This behaviour — not under the
// controllers' authority — is what makes the Decoupled heuristic scheme
// oscillate in Figure 10(b).
type tmu struct {
	cfg Config

	bigCap, littleCap float64 // current frequency caps (GHz)

	overBigS, overLittleS, overTempS    float64 // sustained violation timers
	underBigS, underLittleS, underTempS float64 // sustained safe timers
	sinceStepS                          float64
	forcedS                             float64 // remaining forced-violation time

	engagedBig, engagedLittle, engagedTemp bool
	events                                 int
}

func newTMU(cfg Config) tmu {
	return tmu{
		cfg:       cfg,
		bigCap:    cfg.Big.FreqMaxGHz,
		littleCap: cfg.Little.FreqMaxGHz,
	}
}

// step advances the firmware state machine by dt seconds given instantaneous
// cluster powers.
func (t *tmu) step(b *Board, bigW, littleW, dt float64) {
	t.sinceStepS += dt

	track := func(over bool, overS, underS *float64) {
		if over {
			*overS += dt
			*underS = 0
		} else {
			*underS += dt
			*overS = 0
		}
	}
	// A forced event (Board.ForceEmergencyThrottle) makes the thermal path
	// see a violation for its duration regardless of the real temperature.
	forced := t.forcedS > 0
	if forced {
		t.forcedS -= dt
	}
	track(bigW > t.cfg.BigPowerEmergencyW, &t.overBigS, &t.underBigS)
	track(littleW > t.cfg.LittlePowerEmergencyW, &t.overLittleS, &t.underLittleS)
	track(forced || b.tempC > t.cfg.TempEmergencyC, &t.overTempS, &t.underTempS)

	hold := t.cfg.EmergencyHold.Seconds()
	release := t.cfg.EmergencyReleaseDelay.Seconds()
	hystBig := t.cfg.BigPowerEmergencyW * (1 - t.cfg.EmergencyHysteresisPct)
	hystLittle := t.cfg.LittlePowerEmergencyW * (1 - t.cfg.EmergencyHysteresisPct)
	hystTemp := t.cfg.TempEmergencyC - 2

	if t.sinceStepS < t.cfg.EmergencyStepPeriod.Seconds() {
		return
	}
	t.sinceStepS = 0

	// While a sustained violation persists, the firmware steps the cap down
	// two levels per step period; after the signal has stayed below the
	// release threshold for the release delay, it raises the cap one level
	// per period. The asymmetry (fast attack, slow release) is what makes a
	// governor that races back to maximum oscillate in large sweeps
	// (Fig. 10(b)) while leaving well-behaved controllers alone.
	// Big-cluster power emergency.
	switch {
	case t.overBigS >= hold:
		if !t.engagedBig {
			t.engagedBig = true
			t.events++
		}
		t.bigCap = math.Max(t.cfg.Big.FreqMinGHz,
			math.Min(t.bigCap, b.EffectiveBigFreq())-2*t.cfg.Big.FreqStepGHz)
	case t.engagedBig && t.underBigS >= release && bigW < hystBig:
		t.bigCap += t.cfg.Big.FreqStepGHz
		if t.bigCap >= t.cfg.Big.FreqMaxGHz {
			t.bigCap = t.cfg.Big.FreqMaxGHz
			t.engagedBig = false
		}
	}

	// Little-cluster power emergency.
	switch {
	case t.overLittleS >= hold:
		if !t.engagedLittle {
			t.engagedLittle = true
			t.events++
		}
		t.littleCap = math.Max(t.cfg.Little.FreqMinGHz,
			math.Min(t.littleCap, b.EffectiveLittleFreq())-2*t.cfg.Little.FreqStepGHz)
	case t.engagedLittle && t.underLittleS >= release && littleW < hystLittle:
		t.littleCap += t.cfg.Little.FreqStepGHz
		if t.littleCap >= t.cfg.Little.FreqMaxGHz {
			t.littleCap = t.cfg.Little.FreqMaxGHz
			t.engagedLittle = false
		}
	}

	// Thermal emergency: caps the big cluster hard (the A15s dominate the
	// hot spot on the XU3).
	switch {
	case t.overTempS >= hold:
		if !t.engagedTemp {
			t.engagedTemp = true
			t.events++
		}
		t.bigCap = math.Max(t.cfg.Big.FreqMinGHz,
			math.Min(t.bigCap, b.EffectiveBigFreq())-3*t.cfg.Big.FreqStepGHz)
	case t.engagedTemp && t.underTempS >= release && b.tempC < hystTemp:
		t.bigCap += t.cfg.Big.FreqStepGHz
		if t.bigCap >= t.cfg.Big.FreqMaxGHz {
			t.bigCap = t.cfg.Big.FreqMaxGHz
			t.engagedTemp = false
		}
	}
}
