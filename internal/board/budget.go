package board

import "math"

// budget models an externally imposed board-level power cap, the actuation
// surface the fleet coordination layer drives. It mirrors the RAPL-style
// capping firmware of server parts: when total board power sustains above
// the cap, the governor steps a frequency ceiling on the big cluster down
// (two DVFS levels per step period, the TMU's fast-attack idiom); once power
// has stayed under the cap with hysteresis for a release delay, the ceiling
// is raised back one level at a time. The governor owns its own ceiling —
// the effective big-cluster frequency is the minimum of the controller's
// command, the TMU cap and the budget ceiling — so fleet capping composes
// with, and never fights, the firmware emergency heuristics.
type budget struct {
	cfg Config

	capW   float64 // 0 = uncapped
	capGHz float64 // current big-cluster ceiling (GHz)

	overS, underS float64 // sustained violation / safe timers
	sinceStepS    float64

	engaged bool
	events  int
}

func newBudget(cfg Config) budget {
	return budget{cfg: cfg, capGHz: cfg.Big.FreqMaxGHz}
}

// hold, stepPeriod, releaseDelay and hysteresis fall back to the firmware
// emergency parameters when the dedicated budget knobs are unset, so a
// hand-built Config with a power cap still gets sane dynamics.
func (g *budget) hold() float64 {
	if g.cfg.BudgetHold > 0 {
		return g.cfg.BudgetHold.Seconds()
	}
	return g.cfg.EmergencyHold.Seconds()
}

func (g *budget) stepPeriod() float64 {
	if g.cfg.BudgetStepPeriod > 0 {
		return g.cfg.BudgetStepPeriod.Seconds()
	}
	return g.cfg.EmergencyStepPeriod.Seconds()
}

func (g *budget) releaseDelay() float64 {
	if g.cfg.BudgetReleaseDelay > 0 {
		return g.cfg.BudgetReleaseDelay.Seconds()
	}
	return g.cfg.EmergencyReleaseDelay.Seconds()
}

func (g *budget) hysteresis() float64 {
	if g.cfg.BudgetHysteresisPct > 0 {
		return g.cfg.BudgetHysteresisPct
	}
	return g.cfg.EmergencyHysteresisPct
}

// setCap installs a new power cap in watts. A non-positive cap disables the
// governor and releases the ceiling immediately (the board is its own master
// again); raising or lowering an active cap keeps the ceiling where it is
// and lets the normal attack/release dynamics walk it to the new operating
// point, so a fleet reallocation never snaps a board's frequency.
func (g *budget) setCap(w float64) {
	if w <= 0 {
		g.capW = 0
		g.capGHz = g.cfg.Big.FreqMaxGHz
		g.overS, g.underS, g.sinceStepS = 0, 0, 0
		g.engaged = false
		return
	}
	g.capW = w
}

// step advances the governor by dt seconds given the instantaneous total
// board power (big + little + base).
func (g *budget) step(b *Board, totalW, dt float64) {
	if g.capW <= 0 {
		return
	}
	g.sinceStepS += dt
	if totalW > g.capW {
		g.overS += dt
		g.underS = 0
	} else {
		g.underS += dt
		g.overS = 0
	}
	if g.sinceStepS < g.stepPeriod() {
		return
	}
	g.sinceStepS = 0
	switch {
	case g.overS >= g.hold():
		if !g.engaged {
			g.engaged = true
			g.events++
		}
		g.capGHz = math.Max(g.cfg.Big.FreqMinGHz,
			math.Min(g.capGHz, b.EffectiveBigFreq())-2*g.cfg.Big.FreqStepGHz)
	case g.engaged && g.underS >= g.releaseDelay() && totalW < g.capW*(1-g.hysteresis()):
		g.capGHz += g.cfg.Big.FreqStepGHz
		if g.capGHz >= g.cfg.Big.FreqMaxGHz {
			g.capGHz = g.cfg.Big.FreqMaxGHz
			g.engaged = false
		}
	}
}

// SetPowerCapW imposes a board-level power budget in watts on the total
// board draw (big + little + base). The budget governor enforces it by
// stepping a frequency ceiling on the big cluster (see EffectiveBigFreq); a
// non-positive value removes the cap and releases the ceiling. This is the
// only actuator the fleet coordination layer touches — each board's own
// two-layer controller stack keeps full authority underneath the cap,
// exactly as the paper's OS layer constrains its HW layer.
func (b *Board) SetPowerCapW(w float64) { b.budget.setCap(w) }

// PowerCapW returns the current board power budget in watts (0 = uncapped).
func (b *Board) PowerCapW() float64 { return b.budget.capW }

// BudgetThrottled reports whether the budget governor is currently holding
// the big-cluster frequency ceiling below maximum to enforce the power cap.
func (b *Board) BudgetThrottled() bool { return b.budget.engaged }

// BudgetEvents counts budget-governor engagements so far (rising edges of
// BudgetThrottled).
func (b *Board) BudgetEvents() int { return b.budget.events }
