package board

import (
	"testing"
	"time"
)

// runIntervals advances the board through n 500 ms control intervals at full
// big-cluster tilt and returns the last total sensed power.
func runIntervals(b *Board, t *testing.T, n int) Sensors {
	t.Helper()
	w := steadyApp(t, 0.05)
	allBig(b)
	var s Sensors
	for i := 0; i < n; i++ {
		s = b.Run(w, 500*time.Millisecond)
	}
	return s
}

func TestBudgetGovernorEnforcesCap(t *testing.T) {
	cfg := DefaultConfig()
	b := New(cfg)
	const capW = 2.0
	b.SetPowerCapW(capW)
	if got := b.PowerCapW(); got != capW {
		t.Fatalf("PowerCapW = %v, want %v", got, capW)
	}
	s := runIntervals(b, t, 60)
	if !b.BudgetThrottled() {
		t.Fatal("budget governor never engaged under a 2 W cap at full tilt")
	}
	if !s.BudgetThrottled || s.PowerCapW != capW {
		t.Fatalf("sensors do not reflect the cap: %+v", s)
	}
	if b.BudgetEvents() == 0 {
		t.Fatal("BudgetEvents = 0 after engagement")
	}
	total := s.BigPowerW + s.LittlePowerW + cfg.BasePowerW
	if total > capW*1.15 {
		t.Fatalf("sustained power %.2f W far above the %.1f W cap", total, capW)
	}
	if f := b.EffectiveBigFreq(); f >= cfg.Big.FreqMaxGHz {
		t.Fatalf("effective big frequency %.2f GHz not reduced", f)
	}
}

func TestBudgetGovernorReleasesOnUncap(t *testing.T) {
	b := New(DefaultConfig())
	b.SetPowerCapW(2.0)
	runIntervals(b, t, 60)
	if !b.BudgetThrottled() {
		t.Fatal("governor should be engaged before the release check")
	}
	b.SetPowerCapW(0)
	if b.BudgetThrottled() {
		t.Fatal("removing the cap must release the governor immediately")
	}
	if got := b.PowerCapW(); got != 0 {
		t.Fatalf("PowerCapW = %v after uncap, want 0", got)
	}
	if f := b.EffectiveBigFreq(); f != b.Config().Big.FreqMaxGHz {
		t.Fatalf("effective big frequency %.2f GHz, want ceiling released", f)
	}
}

func TestBudgetGovernorComposesWithTMU(t *testing.T) {
	// The budget ceiling must never override a firmware emergency cap: the
	// effective frequency is the minimum of the two authorities.
	b := New(DefaultConfig())
	b.SetPowerCapW(6.0) // generous cap: budget alone would not throttle
	b.ForceEmergencyThrottle(8 * time.Second)
	s := runIntervals(b, t, 30)
	if !s.Throttled {
		t.Fatal("forced emergency throttle did not engage")
	}
	if f := b.EffectiveBigFreq(); f >= b.Config().Big.FreqMaxGHz {
		t.Fatalf("effective frequency %.2f GHz should carry the TMU cap", f)
	}
	if b.BudgetThrottled() {
		t.Fatal("budget governor engaged under a generous cap; TMU should act alone")
	}
}
