// Package board simulates the paper's experimental platform: an ODROID XU3
// with a Samsung Exynos 5422 (ARM big.LITTLE: 4 out-of-order Cortex-A15 "big"
// cores and 4 in-order Cortex-A7 "little" cores), on-board power sensors
// that update every 260 ms, on-chip temperature sensors, per-cluster DVFS in
// 0.1 GHz steps, CPU hotplug, and the firmware emergency power/thermal
// heuristics that throttle the clusters when preset thresholds are exceeded
// for extended periods (paper §IV, §V-A).
//
// The simulator integrates a nonlinear power model (CV²f dynamic power with
// a frequency-dependent voltage curve, temperature-dependent leakage), a
// first-order RC thermal model, and a roofline performance model in which
// per-thread throughput saturates with frequency according to each
// workload's memory-boundedness. Controllers interact with the board only
// through the actuators and sensors the real board exposes.
package board

import "time"

// ClusterConfig describes one CPU cluster.
type ClusterConfig struct {
	// Name labels the cluster ("big" or "little") in logs.
	Name string
	// MaxCores is the number of physical cores in the cluster.
	MaxCores int

	// DVFS range and step (GHz).
	FreqMinGHz, FreqMaxGHz, FreqStepGHz float64

	// Voltage curve V(f) = VoltBase + VoltPerGHz*f, in volts.
	VoltBase, VoltPerGHz float64

	// CdynWPerV2GHz is the per-core effective switching capacitance:
	// dynamic power per core = Cdyn * V^2 * f * activity.
	CdynWPerV2GHz float64

	// StaticBaseW is the per-core leakage at 50°C; leakage scales as
	// exp((T-50)/StaticTempScaleC).
	StaticBaseW float64
	// StaticTempScaleC is the exponential temperature scale of leakage (°C).
	StaticTempScaleC float64

	// RefFreqGHz anchors the memory roofline: at the reference frequency a
	// workload's nominal IPC holds exactly.
	RefFreqGHz float64

	// StallPowerFactor is the fraction of dynamic power burned while a core
	// is stalled on memory.
	StallPowerFactor float64

	// IdleActivity is the dynamic-power activity of a powered-on idle core
	// (clock gating leaves a residual).
	IdleActivity float64
}

// Config holds the full board model.
type Config struct {
	// Big and Little describe the two CPU clusters.
	Big, Little ClusterConfig

	// SimStep is the physics integration step.
	SimStep time.Duration

	// AmbientC is the ambient temperature in the first-order thermal model
	// dT/dt = (Ambient + R*P_total - T)/Tau.
	AmbientC    float64
	ThermalRCW  float64 // thermal resistance, °C per watt
	ThermalTauS float64 // thermal time constant, seconds
	BasePowerW  float64 // memory + SoC uncore power

	// PowerSensorPeriod is the update period of the on-board INA231-style
	// power sensors (260 ms on the XU3).
	PowerSensorPeriod time.Duration

	// TempEmergencyC is the firmware thermal emergency threshold (paper
	// §V-A: the evaluation limits are chosen just below the firmware's).
	TempEmergencyC         float64
	BigPowerEmergencyW     float64       // big-cluster power emergency threshold
	LittlePowerEmergencyW  float64       // little-cluster power emergency threshold
	EmergencyHold          time.Duration // sustained violation before engaging
	EmergencyStepPeriod    time.Duration // per-step throttle/release cadence
	EmergencyReleaseDelay  time.Duration // below-threshold time before release
	EmergencyHysteresisPct float64       // release hysteresis fraction

	// Budget-governor dynamics for the fleet power cap (SetPowerCapW). The
	// cap is enforced on total board power with the same shape as the
	// firmware emergency heuristics: a sustained violation of BudgetHold
	// engages a big-cluster frequency ceiling stepped down every
	// BudgetStepPeriod, released one step at a time after the power has
	// stayed BudgetHysteresisPct under the cap for BudgetReleaseDelay. A
	// zero value for any knob falls back to the corresponding Emergency*
	// parameter. The budget hold is shorter than the emergency hold by
	// default: a budget overshoot is an efficiency matter, not a safety
	// one, and a fleet reallocation should bite within a control interval.
	BudgetHold          time.Duration // sustained-over-cap time before the governor engages
	BudgetStepPeriod    time.Duration // per-step ceiling walk cadence while engaged
	BudgetReleaseDelay  time.Duration // under-cap time before releasing one step
	BudgetHysteresisPct float64       // release hysteresis fraction below the cap

	// MigrationPenalty is the execution stall charged per migrated thread.
	MigrationPenalty time.Duration

	// DVFSTransition is the cluster-wide stall charged per frequency change
	// (PLL relock / voltage ramp), as on real cpufreq transitions. The
	// default calibration leaves it zero — at the 500 ms control interval a
	// sub-millisecond stall is beneath the simulator's resolution — but the
	// knob exists for studies of fast control loops.
	DVFSTransition time.Duration

	// MemContentionPerCore inflates memory-boundedness per additional busy
	// core (shared-bandwidth contention).
	MemContentionPerCore float64

	// MuxEfficiency is the per-extra-thread multiplexing efficiency when
	// multiple threads share a core.
	MuxEfficiency float64

	// SensorNoiseStd adds zero-mean Gaussian noise (in watts) to the power
	// sensor readings, and a tenth of it (in °C) to the temperature sensor.
	// Zero (the default) gives noise-free sensors; the robustness tests use
	// it for failure injection.
	SensorNoiseStd float64
	// SensorNoiseSeed makes noisy runs reproducible.
	SensorNoiseSeed int64
}

// DefaultConfig returns the ODROID XU3 calibration. Dynamic/static power
// coefficients are set so that the big cluster draws ≈7 W at 4 cores/2.0 GHz
// under a compute-bound load (well above the 3.3 W evaluation cap, as on the
// real board) and the little cluster ≈0.35 W at 4 cores/1.4 GHz, with the
// steady-state hot-spot temperature crossing 79 °C when the big cluster runs
// uncapped.
func DefaultConfig() Config {
	return Config{
		Big: ClusterConfig{
			Name:             "big",
			MaxCores:         4,
			FreqMinGHz:       0.2,
			FreqMaxGHz:       2.0,
			FreqStepGHz:      0.1,
			VoltBase:         0.90,
			VoltPerGHz:       0.25,
			CdynWPerV2GHz:    0.42,
			StaticBaseW:      0.12,
			StaticTempScaleC: 35,
			RefFreqGHz:       1.0,
			StallPowerFactor: 0.35,
			IdleActivity:     0.04,
		},
		Little: ClusterConfig{
			Name:             "little",
			MaxCores:         4,
			FreqMinGHz:       0.2,
			FreqMaxGHz:       1.4,
			FreqStepGHz:      0.1,
			VoltBase:         0.90,
			VoltPerGHz:       0.15,
			CdynWPerV2GHz:    0.040,
			StaticBaseW:      0.010,
			StaticTempScaleC: 35,
			RefFreqGHz:       0.8,
			StallPowerFactor: 0.35,
			IdleActivity:     0.04,
		},
		SimStep:                10 * time.Millisecond,
		AmbientC:               45,
		ThermalRCW:             8.5,
		ThermalTauS:            10.0,
		BasePowerW:             0.6,
		PowerSensorPeriod:      260 * time.Millisecond,
		TempEmergencyC:         80,
		BigPowerEmergencyW:     3.5,
		LittlePowerEmergencyW:  0.36,
		EmergencyHold:          1 * time.Second,
		EmergencyStepPeriod:    200 * time.Millisecond,
		EmergencyReleaseDelay:  2 * time.Second,
		EmergencyHysteresisPct: 0.10,
		BudgetHold:             400 * time.Millisecond,
		BudgetStepPeriod:       200 * time.Millisecond,
		BudgetReleaseDelay:     1 * time.Second,
		BudgetHysteresisPct:    0.05,
		MigrationPenalty:       20 * time.Millisecond,
		MemContentionPerCore:   0.05,
		MuxEfficiency:          0.90,
	}
}
