package lti

import (
	"math"
	"testing"

	"yukta/internal/mat"
)

// loopK returns L(z) = k/(z-a), the canonical discrete first-order loop.
func loopK(k, a float64) *StateSpace {
	return MustStateSpace(
		mat.New(1, 1, []float64{a}),
		mat.New(1, 1, []float64{1}),
		mat.New(1, 1, []float64{k}),
		mat.New(1, 1, []float64{0}),
		ts,
	)
}

func TestLoopMarginsFirstOrder(t *testing.T) {
	// L(z) = k/(z-a): phase crossover at z = -1 where |L| = k/(1+a).
	// Closed loop 1+L = 0 at z = a-k: stable for |a-k| < 1 → k < 1+a.
	// Gain margin should therefore be (1+a)/k.
	k, a := 0.5, 0.6
	m, err := LoopMargins(loopK(k, a))
	if err != nil {
		t.Fatal(err)
	}
	wantGM := (1 + a) / k
	if math.Abs(m.GainMargin-wantGM) > 0.05*wantGM {
		t.Fatalf("gain margin %v, want %v", m.GainMargin, wantGM)
	}
	// Phase margin positive for this stable loop.
	if m.PhaseMarginDeg <= 0 || m.PhaseMarginDeg > 180 {
		t.Fatalf("phase margin %v out of range", m.PhaseMarginDeg)
	}
	if m.GainCrossoverRadS <= 0 || m.PhaseCrossoverRadS <= 0 {
		t.Fatalf("crossover frequencies missing: %+v", m)
	}
}

func TestLoopMarginsNoCrossover(t *testing.T) {
	// Tiny loop gain: |L| never reaches 1 → infinite phase margin.
	m, err := LoopMargins(loopK(0.01, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.PhaseMarginDeg, 1) {
		t.Fatalf("phase margin %v, want +Inf", m.PhaseMarginDeg)
	}
	// Gain margin finite: the phase still crosses 180° at Nyquist.
	if m.GainMargin < 10 {
		t.Fatalf("gain margin %v, want large", m.GainMargin)
	}
}

func TestLoopMarginsRejectMIMO(t *testing.T) {
	g := MustStateSpace(mat.Zeros(1, 1), mat.Zeros(1, 2), mat.Zeros(2, 1), mat.Zeros(2, 2), ts)
	if _, err := LoopMargins(g); err != ErrDimension {
		t.Fatalf("expected ErrDimension, got %v", err)
	}
	if _, err := SensitivityPeak(g); err != ErrDimension {
		t.Fatalf("expected ErrDimension, got %v", err)
	}
}

func TestSensitivityPeak(t *testing.T) {
	// For L = k/(z-a), S = (z-a)/(z-a+k). Larger k (up to instability)
	// raises the sensitivity peak.
	s1, err := SensitivityPeak(loopK(0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SensitivityPeak(loopK(1.4, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if s1 < 1-1e-9 {
		t.Fatalf("sensitivity peak %v below 1", s1)
	}
	if s2 <= s1 {
		t.Fatalf("peak should grow toward instability: %v vs %v", s2, s1)
	}
}
