package lti

import (
	"math"
	"math/cmplx"

	"yukta/internal/mat"
)

// Margins holds the classical stability margins of a SISO loop transfer
// function L(z): how much gain increase and how much phase lag the loop
// tolerates before instability. The paper's Table I contrasts this
// "Classical" margin-based robustness with the structured (SSV) approach;
// the library provides both.
type Margins struct {
	// GainMargin is the factor by which the loop gain can grow before the
	// Nyquist plot reaches -1 (Inf when the phase never crosses 180°).
	GainMargin float64
	// GainCrossoverRadS is the frequency where |L| = 1 (0 if never).
	GainCrossoverRadS float64
	// PhaseMarginDeg is the additional phase lag tolerated at the gain
	// crossover, in degrees (Inf when |L| never reaches 1).
	PhaseMarginDeg float64
	// PhaseCrossoverRadS is the frequency where the phase crosses -180°.
	PhaseCrossoverRadS float64
}

// LoopMargins computes gain and phase margins of the SISO open-loop system
// l on a dense frequency grid up to Nyquist. It returns ErrDimension for
// MIMO systems (use SystemMu-based analysis there, which is the point of
// the paper).
func LoopMargins(l *StateSpace) (Margins, error) {
	if l.Inputs() != 1 || l.Outputs() != 1 {
		return Margins{}, ErrDimension
	}
	const grid = 2048
	m := Margins{GainMargin: math.Inf(1), PhaseMarginDeg: math.Inf(1)}
	nyq := math.Pi / l.Ts

	prevPhase := math.NaN()
	prevMag := math.NaN()
	for i := 1; i <= grid; i++ {
		w := nyq * float64(i) / grid
		g, err := l.Evaluate(cmplx.Exp(complex(0, w*l.Ts)))
		if err != nil {
			continue
		}
		v := g.At(0, 0)
		mag := cmplx.Abs(v)
		ph := cmplx.Phase(v) * 180 / math.Pi // (-180, 180]

		// Phase crossover: phase passes through ±180° (wrap-aware).
		if !math.IsNaN(prevPhase) {
			if crossed180(prevPhase, ph) && mag > 0 {
				if gm := 1 / mag; gm < m.GainMargin {
					m.GainMargin = gm
					m.PhaseCrossoverRadS = w
				}
			}
			// Gain crossover: |L| passes through 1 from above or below.
			if (prevMag-1)*(mag-1) <= 0 && prevMag != mag {
				pm := 180 + ph
				if pm > 180 {
					pm -= 360
				}
				if math.Abs(pm) < math.Abs(m.PhaseMarginDeg) || math.IsInf(m.PhaseMarginDeg, 1) {
					m.PhaseMarginDeg = pm
					m.GainCrossoverRadS = w
				}
			}
		}
		prevPhase, prevMag = ph, mag
	}
	return m, nil
}

// crossed180 reports whether the phase trajectory passed through ±180°
// between two consecutive samples, accounting for the wrap at ±180.
func crossed180(a, b float64) bool {
	// Map both phases to distance-from-180 on the circle; a crossing shows
	// up as a sign change of sin(phase) near the negative real axis.
	na := math.Mod(a+360, 360) // [0, 360)
	nb := math.Mod(b+360, 360)
	return (na-180)*(nb-180) <= 0 && math.Abs(na-nb) < 180
}

// SensitivityPeak returns max |1/(1+L)| over the unit circle for a SISO
// loop — the modern scalar robustness measure (Ms); small peaks mean large
// combined margins.
func SensitivityPeak(l *StateSpace) (float64, error) {
	if l.Inputs() != 1 || l.Outputs() != 1 {
		return 0, ErrDimension
	}
	id := MustStateSpace(mat.Zeros(0, 0), mat.Zeros(0, 1), mat.Zeros(1, 0),
		mat.New(1, 1, []float64{1}), l.Ts)
	cl, err := Feedback(id, l, -1) // 1/(1+L)
	if err != nil {
		return 0, err
	}
	return cl.HInfNorm()
}
