package lti

import (
	"errors"
	"math"

	"yukta/internal/mat"
)

// ErrUnstable is returned when an operation requires a Schur-stable matrix.
var ErrUnstable = errors.New("lti: matrix is not Schur stable")

// DiscreteLyapunov solves the discrete Lyapunov (Stein) equation
//
//	A X A^T - X + Q = 0
//
// for X using the doubling (Smith) iteration, which converges quadratically
// for Schur-stable A: X = sum_k A^k Q (A^T)^k.
func DiscreteLyapunov(a, q *mat.Matrix) (*mat.Matrix, error) {
	if r, err := mat.SpectralRadius(a); err != nil || r >= 1-1e-12 {
		return nil, ErrUnstable
	}
	x := q.Clone()
	ak := a.Clone()
	for iter := 0; iter < 100; iter++ {
		term := ak.Mul(x).Mul(ak.T())
		x = x.Add(term)
		if term.MaxAbs() <= 1e-14*(1+x.MaxAbs()) {
			return x, nil
		}
		ak = ak.Mul(ak)
	}
	return nil, mat.ErrNoConvergence
}

// ControllabilityGramian returns Wc solving A Wc A^T - Wc + B B^T = 0.
func (s *StateSpace) ControllabilityGramian() (*mat.Matrix, error) {
	return DiscreteLyapunov(s.A, s.B.Mul(s.B.T()))
}

// ObservabilityGramian returns Wo solving A^T Wo A - Wo + C^T C = 0.
func (s *StateSpace) ObservabilityGramian() (*mat.Matrix, error) {
	return DiscreteLyapunov(s.A.T(), s.C.T().Mul(s.C))
}

// H2Norm returns the H2 norm of a stable, strictly proper or proper discrete
// system: sqrt(trace(C Wc C^T + D D^T)).
func (s *StateSpace) H2Norm() (float64, error) {
	if s.Order() == 0 {
		return s.D.FrobeniusNorm(), nil
	}
	wc, err := s.ControllabilityGramian()
	if err != nil {
		return 0, err
	}
	t := s.C.Mul(wc).Mul(s.C.T()).Trace() + s.D.Mul(s.D.T()).Trace()
	if t < 0 {
		t = 0
	}
	return math.Sqrt(t), nil
}

// BalancedTruncation returns a reduced-order model keeping r states, using
// balanced truncation based on the square-root method over the Gramians'
// Cholesky-like factors. The system must be stable. If r >= Order, a clone
// is returned.
func (s *StateSpace) BalancedTruncation(r int) (*StateSpace, error) {
	n := s.Order()
	if r >= n {
		return s.Clone(), nil
	}
	if r < 1 {
		r = 1
	}
	wc, err := s.ControllabilityGramian()
	if err != nil {
		return nil, err
	}
	wo, err := s.ObservabilityGramian()
	if err != nil {
		return nil, err
	}
	// Petrov-Galerkin reduction onto the dominant invariant subspaces of
	// M = Wc*Wo (right basis V) and M^T = Wo*Wc (left basis W), which carry
	// the largest Hankel singular values. The oblique projector V(W^T V)^-1 W^T
	// approximates balanced truncation without requiring an eigenvector
	// decomposition.
	m := wc.Mul(wo)
	v := dominantSubspace(m, r)
	w := dominantSubspace(m.T(), r)
	wtv := w.T().Mul(v)
	wtvInv, err := mat.Inverse(wtv)
	if err != nil {
		return nil, err
	}
	wt := wtvInv.Mul(w.T()) // left projector rows, satisfying wt*v = I
	ar := wt.Mul(s.A).Mul(v)
	br := wt.Mul(s.B)
	cr := s.C.Mul(v)
	return NewStateSpace(ar, br, cr, s.D.Clone(), s.Ts)
}

// dominantSubspace returns an orthonormal basis (n×r) for the dominant
// invariant subspace of m via subspace iteration.
func dominantSubspace(m *mat.Matrix, r int) *mat.Matrix {
	n := m.Rows()
	v := mat.Zeros(n, r)
	for i := 0; i < n; i++ {
		for j := 0; j < r; j++ {
			// Deterministic, generically independent start basis.
			s := math.Sin(float64(1 + i*r + j))
			if j == i%r {
				s += 0.1
			}
			v.Set(i, j, s)
		}
	}
	v = orthonormalize(v)
	for iter := 0; iter < 200; iter++ {
		v = orthonormalize(m.Mul(v))
	}
	return v
}

// orthonormalize applies modified Gram-Schmidt to the columns of v.
func orthonormalize(v *mat.Matrix) *mat.Matrix {
	out := v.Clone()
	for j := 0; j < out.Cols(); j++ {
		col := out.Col(j)
		for k := 0; k < j; k++ {
			prev := out.Col(k)
			var dot float64
			for i := range col {
				dot += col[i] * prev[i]
			}
			for i := range col {
				col[i] -= dot * prev[i]
			}
		}
		var nrm float64
		for _, x := range col {
			nrm += x * x
		}
		nrm = math.Sqrt(nrm)
		if nrm < 1e-300 {
			nrm = 1
		}
		for i := range col {
			out.Set(i, j, col[i]/nrm)
		}
	}
	return out
}
