// Package lti implements discrete-time linear time-invariant (LTI) systems
// in state-space form, with the analysis operations needed for robust
// controller synthesis: stability tests, frequency response on the unit
// circle, H-infinity and H2 norms, interconnections (series, parallel,
// feedback, LFT), discrete Lyapunov equations, and simulation.
//
// All systems are discrete time with a sampling interval Ts (seconds). The
// Yukta prototype samples at 500 ms, following the paper's Section V-A.
package lti

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"yukta/internal/mat"
)

// ErrDimension reports inconsistent state-space dimensions.
var ErrDimension = errors.New("lti: inconsistent state-space dimensions")

// StateSpace is a discrete-time LTI system
//
//	x(T+1) = A x(T) + B u(T)
//	y(T)   = C x(T) + D u(T)
//
// with sampling interval Ts seconds.
type StateSpace struct {
	A, B, C, D *mat.Matrix
	Ts         float64
}

// NewStateSpace validates the dimensions and returns the system. A must be
// n×n, B n×m, C p×n, D p×m.
func NewStateSpace(a, b, c, d *mat.Matrix, ts float64) (*StateSpace, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("%w: A is %dx%d", ErrDimension, a.Rows(), a.Cols())
	}
	if b.Rows() != n {
		return nil, fmt.Errorf("%w: B has %d rows, want %d", ErrDimension, b.Rows(), n)
	}
	if c.Cols() != n {
		return nil, fmt.Errorf("%w: C has %d cols, want %d", ErrDimension, c.Cols(), n)
	}
	if d.Rows() != c.Rows() || d.Cols() != b.Cols() {
		return nil, fmt.Errorf("%w: D is %dx%d, want %dx%d", ErrDimension, d.Rows(), d.Cols(), c.Rows(), b.Cols())
	}
	if ts <= 0 {
		return nil, fmt.Errorf("lti: sampling interval must be positive, got %v", ts)
	}
	return &StateSpace{A: a, B: b, C: c, D: d, Ts: ts}, nil
}

// MustStateSpace is NewStateSpace that panics on error; for literals in tests
// and internal construction where dimensions are known correct.
func MustStateSpace(a, b, c, d *mat.Matrix, ts float64) *StateSpace {
	ss, err := NewStateSpace(a, b, c, d, ts)
	if err != nil {
		panic(err)
	}
	return ss
}

// Order returns the state dimension n.
func (s *StateSpace) Order() int { return s.A.Rows() }

// Inputs returns the number of inputs m.
func (s *StateSpace) Inputs() int { return s.B.Cols() }

// Outputs returns the number of outputs p.
func (s *StateSpace) Outputs() int { return s.C.Rows() }

// Clone returns a deep copy of the system.
func (s *StateSpace) Clone() *StateSpace {
	return &StateSpace{A: s.A.Clone(), B: s.B.Clone(), C: s.C.Clone(), D: s.D.Clone(), Ts: s.Ts}
}

// IsStable reports whether all eigenvalues of A lie strictly inside the unit
// circle (Schur stability), with a small numerical margin.
func (s *StateSpace) IsStable() bool {
	if s.Order() == 0 {
		return true
	}
	r, err := mat.SpectralRadius(s.A)
	if err != nil {
		return false
	}
	return r < 1-1e-9
}

// SpectralRadius returns the spectral radius of A.
func (s *StateSpace) SpectralRadius() (float64, error) {
	if s.Order() == 0 {
		return 0, nil
	}
	return mat.SpectralRadius(s.A)
}

// Evaluate returns the transfer matrix G(z) = C (zI - A)^-1 B + D at the
// complex point z.
func (s *StateSpace) Evaluate(z complex128) (*mat.CMatrix, error) {
	n := s.Order()
	d := mat.ToComplex(s.D)
	if n == 0 {
		return d, nil
	}
	zia := mat.ToComplex(s.A).Scale(-1)
	for i := 0; i < n; i++ {
		zia.Set(i, i, zia.At(i, i)+z)
	}
	x, err := mat.CSolve(zia, mat.ToComplex(s.B))
	if err != nil {
		return nil, fmt.Errorf("lti: evaluating G(%v): %w", z, err)
	}
	return mat.ToComplex(s.C).Mul(x).Add(d), nil
}

// FrequencyResponse evaluates the transfer matrix at nPoints frequencies
// logarithmically spaced from near DC up to the Nyquist frequency, returning
// the angular frequencies (rad/s) and responses.
func (s *StateSpace) FrequencyResponse(nPoints int) ([]float64, []*mat.CMatrix, error) {
	if nPoints < 2 {
		nPoints = 2
	}
	nyquist := math.Pi / s.Ts
	freqs := make([]float64, nPoints)
	resps := make([]*mat.CMatrix, nPoints)
	// Logarithmic spread over 4 decades below Nyquist, plus Nyquist itself.
	lo := nyquist * 1e-4
	for i := 0; i < nPoints; i++ {
		f := lo * math.Pow(nyquist/lo, float64(i)/float64(nPoints-1))
		freqs[i] = f
		z := cmplx.Exp(complex(0, f*s.Ts))
		g, err := s.Evaluate(z)
		if err != nil {
			return nil, nil, err
		}
		resps[i] = g
	}
	return freqs, resps, nil
}

// HInfNorm returns an estimate of the H-infinity norm: the peak of
// sigma_max(G(e^{jw})) over the unit circle. It uses a coarse grid followed
// by golden-section refinement around the peak. For unstable systems the
// value is still the supremum over the unit circle (the L-infinity norm).
func (s *StateSpace) HInfNorm() (float64, error) {
	const grid = 256
	best := 0.0
	bestTheta := 0.0
	for i := 0; i <= grid; i++ {
		theta := math.Pi * float64(i) / grid
		g, err := s.Evaluate(cmplx.Exp(complex(0, theta)))
		if err != nil {
			// Pole exactly on the unit circle: norm is unbounded.
			return math.Inf(1), nil
		}
		if v := mat.CMaxSingularValue(g); v > best {
			best, bestTheta = v, theta
		}
	}
	// Golden-section refinement around the best grid point.
	lo := math.Max(0, bestTheta-math.Pi/grid)
	hi := math.Min(math.Pi, bestTheta+math.Pi/grid)
	eval := func(theta float64) float64 {
		g, err := s.Evaluate(cmplx.Exp(complex(0, theta)))
		if err != nil {
			return math.Inf(1)
		}
		return mat.CMaxSingularValue(g)
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := eval(x1), eval(x2)
	for iter := 0; iter < 40 && b-a > 1e-10; iter++ {
		if f1 < f2 { // maximize
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = eval(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = eval(x1)
		}
	}
	if f1 > best {
		best = f1
	}
	if f2 > best {
		best = f2
	}
	return best, nil
}

// DCGain returns G(1), the steady-state gain matrix of the discrete system.
func (s *StateSpace) DCGain() (*mat.Matrix, error) {
	g, err := s.Evaluate(1)
	if err != nil {
		return nil, err
	}
	out := mat.Zeros(g.Rows(), g.Cols())
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			out.Set(i, j, real(g.At(i, j)))
		}
	}
	return out, nil
}

// Simulate runs the system from initial state x0 (nil means zero) over the
// input sequence u (len T, each of length Inputs()) and returns the output
// sequence (len T, each of length Outputs()).
func (s *StateSpace) Simulate(x0 []float64, u [][]float64) ([][]float64, error) {
	n := s.Order()
	x := make([]float64, n)
	if x0 != nil {
		if len(x0) != n {
			return nil, fmt.Errorf("%w: x0 has length %d, want %d", ErrDimension, len(x0), n)
		}
		copy(x, x0)
	}
	out := make([][]float64, len(u))
	for t, ut := range u {
		if len(ut) != s.Inputs() {
			return nil, fmt.Errorf("%w: u[%d] has length %d, want %d", ErrDimension, t, len(ut), s.Inputs())
		}
		y := s.C.MulVec(x)
		du := s.D.MulVec(ut)
		for i := range y {
			y[i] += du[i]
		}
		out[t] = y
		ax := s.A.MulVec(x)
		bu := s.B.MulVec(ut)
		for i := range ax {
			ax[i] += bu[i]
		}
		x = ax
	}
	return out, nil
}

// StepResponse returns the response to a unit step on input j for nSteps
// samples, all other inputs zero.
func (s *StateSpace) StepResponse(j, nSteps int) ([][]float64, error) {
	if j < 0 || j >= s.Inputs() {
		return nil, fmt.Errorf("lti: step input %d out of range %d", j, s.Inputs())
	}
	u := make([][]float64, nSteps)
	for t := range u {
		u[t] = make([]float64, s.Inputs())
		u[t][j] = 1
	}
	return s.Simulate(nil, u)
}
