package lti

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"yukta/internal/mat"
)

const ts = 0.5 // the Yukta sampling interval

// firstOrder returns the scalar system y(T+1)'s x dynamics: x+ = a x + b u,
// y = c x + d u.
func firstOrder(a, b, c, d float64) *StateSpace {
	return MustStateSpace(
		mat.New(1, 1, []float64{a}),
		mat.New(1, 1, []float64{b}),
		mat.New(1, 1, []float64{c}),
		mat.New(1, 1, []float64{d}),
		ts,
	)
}

func randStable(rng *rand.Rand, n, m, p int) *StateSpace {
	a := mat.Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	// Scale A to spectral radius <= 0.85.
	r, err := mat.SpectralRadius(a)
	if err == nil && r > 0 {
		a = a.Scale(0.85 / r)
	}
	b := mat.Zeros(n, m)
	c := mat.Zeros(p, n)
	d := mat.Zeros(p, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < n; j++ {
			c.Set(i, j, rng.NormFloat64())
		}
	}
	return MustStateSpace(a, b, c, d, ts)
}

func TestNewStateSpaceValidates(t *testing.T) {
	_, err := NewStateSpace(mat.Zeros(2, 3), mat.Zeros(2, 1), mat.Zeros(1, 2), mat.Zeros(1, 1), ts)
	if err == nil {
		t.Fatal("expected dimension error for non-square A")
	}
	_, err = NewStateSpace(mat.Zeros(2, 2), mat.Zeros(3, 1), mat.Zeros(1, 2), mat.Zeros(1, 1), ts)
	if err == nil {
		t.Fatal("expected dimension error for B rows")
	}
	_, err = NewStateSpace(mat.Zeros(2, 2), mat.Zeros(2, 1), mat.Zeros(1, 2), mat.Zeros(1, 1), -1)
	if err == nil {
		t.Fatal("expected error for negative Ts")
	}
}

func TestStability(t *testing.T) {
	if !firstOrder(0.9, 1, 1, 0).IsStable() {
		t.Fatal("a=0.9 should be stable")
	}
	if firstOrder(1.1, 1, 1, 0).IsStable() {
		t.Fatal("a=1.1 should be unstable")
	}
	if firstOrder(-0.99, 1, 1, 0).IsStable() == false {
		t.Fatal("a=-0.99 should be stable")
	}
}

func TestEvaluateScalar(t *testing.T) {
	// G(z) = c*b/(z-a) + d; check at z=1.
	g := firstOrder(0.5, 2, 3, 1)
	got, err := g.Evaluate(1)
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0*2.0/(1-0.5) + 1 // 13
	if cmplx.Abs(got.At(0, 0)-complex(want, 0)) > 1e-12 {
		t.Fatalf("G(1) = %v, want %v", got.At(0, 0), want)
	}
}

func TestDCGainMatchesSimulation(t *testing.T) {
	g := firstOrder(0.7, 1, 1, 0)
	dc, err := g.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := g.StepResponse(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	final := resp[len(resp)-1][0]
	if math.Abs(final-dc.At(0, 0)) > 1e-9 {
		t.Fatalf("step settles at %v, DC gain %v", final, dc.At(0, 0))
	}
}

func TestHInfNormScalar(t *testing.T) {
	// For G(z) = 1/(z-a), the peak on the unit circle is at z=1 (a>0):
	// |G| = 1/(1-a).
	g := firstOrder(0.8, 1, 1, 0)
	norm, err := g.HInfNorm()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - 0.8)
	if math.Abs(norm-want) > 1e-6*want {
		t.Fatalf("HInf = %v, want %v", norm, want)
	}
}

func TestHInfStaticGain(t *testing.T) {
	g := MustStateSpace(mat.Zeros(0, 0), mat.Zeros(0, 2), mat.Zeros(2, 0),
		mat.FromRows([][]float64{{3, 0}, {0, 1}}), ts)
	norm, err := g.HInfNorm()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-3) > 1e-9 {
		t.Fatalf("HInf of static gain = %v, want 3", norm)
	}
}

func TestSeriesMatchesProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randStable(rng, 1+rng.Intn(3), 2, 2)
		g2 := randStable(rng, 1+rng.Intn(3), 2, 2)
		s, err := Series(g1, g2)
		if err != nil {
			return false
		}
		// Check at several points on the unit circle: S(z) = G2(z)G1(z).
		for _, theta := range []float64{0.1, 0.7, 2.0} {
			z := cmplx.Exp(complex(0, theta))
			sg, err1 := s.Evaluate(z)
			g1v, err2 := g1.Evaluate(z)
			g2v, err3 := g2.Evaluate(z)
			if err1 != nil || err2 != nil || err3 != nil {
				return false
			}
			want := g2v.Mul(g1v)
			for i := 0; i < sg.Rows(); i++ {
				for j := 0; j < sg.Cols(); j++ {
					if cmplx.Abs(sg.At(i, j)-want.At(i, j)) > 1e-8 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randStable(rng, 1+rng.Intn(3), 2, 2)
		g2 := randStable(rng, 1+rng.Intn(3), 2, 2)
		p, err := Parallel(g1, g2)
		if err != nil {
			return false
		}
		z := cmplx.Exp(complex(0, 0.9))
		pv, _ := p.Evaluate(z)
		g1v, _ := g1.Evaluate(z)
		g2v, _ := g2.Evaluate(z)
		want := g1v.Add(g2v)
		for i := 0; i < pv.Rows(); i++ {
			for j := 0; j < pv.Cols(); j++ {
				if cmplx.Abs(pv.At(i, j)-want.At(i, j)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedbackScalarKnown(t *testing.T) {
	// Closed loop of G(z)=1/(z-a) with unit negative feedback:
	// T(z) = G/(1+G) = 1/(z-a+1).
	g := firstOrder(0.5, 1, 1, 0)
	h := MustStateSpace(mat.Zeros(0, 0), mat.Zeros(0, 1), mat.Zeros(1, 0),
		mat.New(1, 1, []float64{1}), ts)
	cl, err := Feedback(g, h, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0.2, 1.1} {
		z := cmplx.Exp(complex(0, theta))
		got, _ := cl.Evaluate(z)
		want := 1 / (z - 0.5 + 1)
		if cmplx.Abs(got.At(0, 0)-want) > 1e-10 {
			t.Fatalf("T(%v) = %v, want %v", z, got.At(0, 0), want)
		}
	}
}

func TestFeedbackAlgebraicLoopError(t *testing.T) {
	// Static g with D=1 and static h with D=1 and positive feedback gives
	// singular I - D*Dh.
	g := MustStateSpace(mat.Zeros(0, 0), mat.Zeros(0, 1), mat.Zeros(1, 0),
		mat.New(1, 1, []float64{1}), ts)
	if _, err := Feedback(g, g, 1); err == nil {
		t.Fatal("expected singular algebraic loop error")
	}
}

func TestLFTLowerEquivalence(t *testing.T) {
	// For a plant with no direct feedthrough between control and measurement
	// partitions, closing a static controller via LFT must match a hand
	// computation at a point: use scalar blocks.
	// P: 2 inputs (w,u), 2 outputs (z,y); state 1.
	a := mat.New(1, 1, []float64{0.6})
	b := mat.FromRows([][]float64{{1, 2}})
	c := mat.FromRows([][]float64{{1}, {0.5}})
	d := mat.FromRows([][]float64{{0, 0.3}, {0.1, 0}})
	p := MustStateSpace(a, b, c, d, ts)
	// Static controller u = 2y.
	k := MustStateSpace(mat.Zeros(0, 0), mat.Zeros(0, 1), mat.Zeros(1, 0),
		mat.New(1, 1, []float64{2}), ts)
	cl, err := LFTLower(p, 1, 1, k)
	if err != nil {
		t.Fatal(err)
	}
	// Verify by direct transfer algebra at z0.
	z0 := cmplx.Exp(complex(0, 0.4))
	pm, _ := p.Evaluate(z0)
	p11, p12 := pm.At(0, 0), pm.At(0, 1)
	p21, p22 := pm.At(1, 0), pm.At(1, 1)
	kv := complex(2, 0)
	want := p11 + p12*kv*p21/(1-p22*kv)
	got, _ := cl.Evaluate(z0)
	if cmplx.Abs(got.At(0, 0)-want) > 1e-10 {
		t.Fatalf("LFT(%v) = %v, want %v", z0, got.At(0, 0), want)
	}
	if cl.Inputs() != 1 || cl.Outputs() != 1 {
		t.Fatalf("LFT shape %dx%d, want 1x1", cl.Outputs(), cl.Inputs())
	}
}

func TestDiscreteLyapunovResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		g := randStable(rng, n, 1, 1)
		q := mat.Identity(n)
		x, err := DiscreteLyapunov(g.A, q)
		if err != nil {
			return false
		}
		resid := g.A.Mul(x).Mul(g.A.T()).Sub(x).Add(q)
		return resid.MaxAbs() < 1e-8*(1+x.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscreteLyapunovRejectsUnstable(t *testing.T) {
	a := mat.New(1, 1, []float64{1.2})
	if _, err := DiscreteLyapunov(a, mat.Identity(1)); err != ErrUnstable {
		t.Fatalf("expected ErrUnstable, got %v", err)
	}
}

func TestH2NormScalar(t *testing.T) {
	// For x+ = a x + u, y = x: H2^2 = sum a^{2k} = 1/(1-a^2).
	g := firstOrder(0.5, 1, 1, 0)
	h2, err := g.H2Norm()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(1 / (1 - 0.25))
	if math.Abs(h2-want) > 1e-9 {
		t.Fatalf("H2 = %v, want %v", h2, want)
	}
}

func TestSimulateImpulse(t *testing.T) {
	// Impulse through x+ = 0.5x + u, y = x gives y = 0, 1, 0.5, 0.25 ...
	g := firstOrder(0.5, 1, 1, 0)
	u := [][]float64{{1}, {0}, {0}, {0}}
	y, err := g.Simulate(nil, u)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0.5, 0.25}
	for i, w := range want {
		if math.Abs(y[i][0]-w) > 1e-12 {
			t.Fatalf("impulse response %v, want %v", y, want)
		}
	}
}

func TestBalancedTruncationPreservesDCGain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randStable(rng, 6, 1, 1)
	r, err := g.BalancedTruncation(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Order() != 3 {
		t.Fatalf("reduced order %d, want 3", r.Order())
	}
	gd, _ := g.DCGain()
	rd, _ := r.DCGain()
	// Projection-based reduction keeps the dominant dynamics; the DC gains
	// should be within a loose factor for a random well-damped system.
	if math.Abs(gd.At(0, 0)) > 1e-6 {
		rel := math.Abs(rd.At(0, 0)-gd.At(0, 0)) / math.Abs(gd.At(0, 0))
		if rel > 0.5 {
			t.Fatalf("DC gain drifted: %v vs %v", rd.At(0, 0), gd.At(0, 0))
		}
	}
}

func TestAppendBlockStructure(t *testing.T) {
	g1 := firstOrder(0.5, 1, 1, 0)
	g2 := firstOrder(0.3, 1, 1, 0)
	ap, err := Append(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Inputs() != 2 || ap.Outputs() != 2 || ap.Order() != 2 {
		t.Fatalf("append shape wrong: %d inputs %d outputs %d states", ap.Inputs(), ap.Outputs(), ap.Order())
	}
	// Cross-coupling must be zero.
	z := cmplx.Exp(complex(0, 0.3))
	gv, _ := ap.Evaluate(z)
	if cmplx.Abs(gv.At(0, 1)) > 1e-12 || cmplx.Abs(gv.At(1, 0)) > 1e-12 {
		t.Fatalf("append has cross coupling: %v", gv)
	}
}
