package lti

import (
	"fmt"

	"yukta/internal/mat"
)

// Series returns the cascade g2*g1 (u -> g1 -> g2 -> y).
func Series(g1, g2 *StateSpace) (*StateSpace, error) {
	if g1.Outputs() != g2.Inputs() {
		return nil, fmt.Errorf("%w: series %d outputs into %d inputs", ErrDimension, g1.Outputs(), g2.Inputs())
	}
	if g1.Ts != g2.Ts {
		return nil, fmt.Errorf("lti: series sampling mismatch %v vs %v", g1.Ts, g2.Ts)
	}
	n1, n2 := g1.Order(), g2.Order()
	a := mat.Zeros(n1+n2, n1+n2)
	a.SetSlice(0, 0, g1.A)
	a.SetSlice(n1, n1, g2.A)
	a.SetSlice(n1, 0, g2.B.Mul(g1.C))
	b := mat.Zeros(n1+n2, g1.Inputs())
	b.SetSlice(0, 0, g1.B)
	b.SetSlice(n1, 0, g2.B.Mul(g1.D))
	c := mat.Zeros(g2.Outputs(), n1+n2)
	c.SetSlice(0, 0, g2.D.Mul(g1.C))
	c.SetSlice(0, n1, g2.C)
	d := g2.D.Mul(g1.D)
	return NewStateSpace(a, b, c, d, g1.Ts)
}

// Parallel returns g1 + g2 (shared input, summed outputs).
func Parallel(g1, g2 *StateSpace) (*StateSpace, error) {
	if g1.Inputs() != g2.Inputs() || g1.Outputs() != g2.Outputs() {
		return nil, fmt.Errorf("%w: parallel shape mismatch", ErrDimension)
	}
	if g1.Ts != g2.Ts {
		return nil, fmt.Errorf("lti: parallel sampling mismatch %v vs %v", g1.Ts, g2.Ts)
	}
	n1, n2 := g1.Order(), g2.Order()
	a := mat.Zeros(n1+n2, n1+n2)
	a.SetSlice(0, 0, g1.A)
	a.SetSlice(n1, n1, g2.A)
	b := g1.B.VStack(g2.B)
	c := g1.C.HStack(g2.C)
	d := g1.D.Add(g2.D)
	return NewStateSpace(a, b, c, d, g1.Ts)
}

// Append stacks two systems block-diagonally: inputs and outputs are
// concatenated and the systems do not interact.
func Append(g1, g2 *StateSpace) (*StateSpace, error) {
	if g1.Ts != g2.Ts {
		return nil, fmt.Errorf("lti: append sampling mismatch %v vs %v", g1.Ts, g2.Ts)
	}
	a := mat.BlockDiag(g1.A, g2.A)
	b := mat.BlockDiag(g1.B, g2.B)
	c := mat.BlockDiag(g1.C, g2.C)
	d := mat.BlockDiag(g1.D, g2.D)
	return NewStateSpace(a, b, c, d, g1.Ts)
}

// Feedback returns the closed loop of plant g with feedback h:
//
//	y = g(u + sign*h(y))
//
// with sign = -1 for negative feedback (the default convention). It returns
// an error if the algebraic loop I - sign*Dg*Dh is singular.
func Feedback(g, h *StateSpace, sign float64) (*StateSpace, error) {
	if g.Outputs() != h.Inputs() || h.Outputs() != g.Inputs() {
		return nil, fmt.Errorf("%w: feedback shapes %dx%d and %dx%d", ErrDimension,
			g.Outputs(), g.Inputs(), h.Outputs(), h.Inputs())
	}
	if g.Ts != h.Ts {
		return nil, fmt.Errorf("lti: feedback sampling mismatch %v vs %v", g.Ts, h.Ts)
	}
	ng, nh := g.Order(), h.Order()
	// Resolve the algebraic loop: y = Cg xg + Dg(u + s*yh), yh = Ch xh + Dh y.
	// => (I - s*Dg*Dh) y = Cg xg + s*Dg*Ch xh + Dg u
	eye := mat.Identity(g.Outputs())
	m := eye.Sub(g.D.Mul(h.D).Scale(sign))
	mInv, err := mat.Inverse(m)
	if err != nil {
		return nil, fmt.Errorf("lti: algebraic loop is singular: %w", err)
	}
	// y = mInv (Cg xg + s Dg Ch xh + Dg u)
	cy := mat.Zeros(g.Outputs(), ng+nh)
	cy.SetSlice(0, 0, mInv.Mul(g.C))
	cy.SetSlice(0, ng, mInv.Mul(g.D.Mul(h.C)).Scale(sign))
	dy := mInv.Mul(g.D)

	// xg+ = Ag xg + Bg(u + s(Ch xh + Dh y))
	// xh+ = Ah xh + Bh y
	a := mat.Zeros(ng+nh, ng+nh)
	a.SetSlice(0, 0, g.A.Add(g.B.Mul(h.D).Mul(cy.Slice(0, g.Outputs(), 0, ng)).Scale(sign)))
	topRight := g.B.Mul(h.C).Scale(sign).Add(g.B.Mul(h.D).Mul(cy.Slice(0, g.Outputs(), ng, ng+nh)).Scale(sign))
	a.SetSlice(0, ng, topRight)
	a.SetSlice(ng, 0, h.B.Mul(cy.Slice(0, g.Outputs(), 0, ng))) // xh+ rows, xg cols
	a.SetSlice(ng, ng, h.A.Add(h.B.Mul(cy.Slice(0, g.Outputs(), ng, ng+nh))))

	b := mat.Zeros(ng+nh, g.Inputs())
	b.SetSlice(0, 0, g.B.Add(g.B.Mul(h.D).Mul(dy).Scale(sign)))
	b.SetSlice(ng, 0, h.B.Mul(dy))

	return NewStateSpace(a, b, cy, dy, g.Ts)
}

// LFTLower forms the lower linear fractional transformation F_l(P, K): the
// plant P is partitioned with nw exogenous inputs and nz exogenous outputs,
//
//	[z]   [P11 P12] [w]
//	[y] = [P21 P22] [u],   u = K y
//
// and the result maps w -> z with K closed around the lower loop. The
// controller K must have P's measurement count as inputs and P's control
// count as outputs. Returns an error if the algebraic loop is singular.
func LFTLower(p *StateSpace, nz, nw int, k *StateSpace) (*StateSpace, error) {
	ny := p.Outputs() - nz // measurements
	nu := p.Inputs() - nw  // controls
	if ny < 0 || nu < 0 {
		return nil, fmt.Errorf("%w: partition nz=%d nw=%d exceeds plant %dx%d", ErrDimension, nz, nw, p.Outputs(), p.Inputs())
	}
	if k.Inputs() != ny || k.Outputs() != nu {
		return nil, fmt.Errorf("%w: controller is %dx%d, want %dx%d", ErrDimension, k.Outputs(), k.Inputs(), nu, ny)
	}
	if p.Ts != k.Ts {
		return nil, fmt.Errorf("lti: LFT sampling mismatch %v vs %v", p.Ts, k.Ts)
	}
	np, nk := p.Order(), k.Order()

	b1 := p.B.Slice(0, np, 0, nw)
	b2 := p.B.Slice(0, np, nw, nw+nu)
	c1 := p.C.Slice(0, nz, 0, np)
	c2 := p.C.Slice(nz, nz+ny, 0, np)
	d11 := p.D.Slice(0, nz, 0, nw)
	d12 := p.D.Slice(0, nz, nw, nw+nu)
	d21 := p.D.Slice(nz, nz+ny, 0, nw)
	d22 := p.D.Slice(nz, nz+ny, nw, nw+nu)

	// Algebraic loop: u = Ck xk + Dk y, y = C2 xp + D21 w + D22 u.
	// (I - Dk D22) y' ... resolve via u = (I - Dk D22)^-1-free approach:
	// Let M = I - Dk*D22 (ny×ny on y side) — standard: solve for y first.
	eye := mat.Identity(ny)
	m := eye.Sub(d22.Mul(k.D)) // careful: y = C2 x + D21 w + D22 (Ck xk + Dk y)
	mInv, err := mat.Inverse(m)
	if err != nil {
		return nil, fmt.Errorf("lti: LFT algebraic loop is singular: %w", err)
	}
	// y = mInv (C2 xp + D21 w + D22 Ck xk)
	yC := mat.Zeros(ny, np+nk)
	yC.SetSlice(0, 0, mInv.Mul(c2))
	yC.SetSlice(0, np, mInv.Mul(d22).Mul(k.C))
	yD := mInv.Mul(d21)
	// u = Ck xk + Dk y
	uC := mat.Zeros(nu, np+nk)
	uC.SetSlice(0, np, k.C)
	uC = uC.Add(k.D.Mul(yC))
	uD := k.D.Mul(yD)

	// xp+ = A xp + B1 w + B2 u ; xk+ = Ak xk + Bk y
	a := mat.Zeros(np+nk, np+nk)
	ap := mat.Zeros(np, np+nk)
	ap.SetSlice(0, 0, p.A)
	ap = ap.Add(b2.Mul(uC))
	a.SetSlice(0, 0, ap)
	ak := mat.Zeros(nk, np+nk)
	ak.SetSlice(0, np, k.A)
	ak = ak.Add(k.B.Mul(yC))
	a.SetSlice(np, 0, ak)

	b := mat.Zeros(np+nk, nw)
	b.SetSlice(0, 0, b1.Add(b2.Mul(uD)))
	b.SetSlice(np, 0, k.B.Mul(yD))

	// z = C1 xp + D11 w + D12 u
	c := mat.Zeros(nz, np+nk)
	c.SetSlice(0, 0, c1)
	c = c.Add(d12.Mul(uC))
	d := d11.Add(d12.Mul(uD))

	return NewStateSpace(a, b, c, d, p.Ts)
}
