// Package control is the public face of Yukta's controller-design toolkit
// for building controllers for layers beyond the bundled big.LITTLE
// hardware/OS pair (the paper's §III-D multi-layer vision: a network layer,
// a storage layer, an application layer...).
//
// The workflow mirrors the paper's Figure 3:
//
//  1. describe your layer's signals: inputs with weights and discrete
//     levels, outputs with deviation bounds, external signals from the
//     neighboring layers;
//  2. identify an order-4 MIMO model from recorded input/output data
//     (Identify);
//  3. synthesize an SSV controller against an uncertainty guardband
//     (Synthesize) and read its robustness report;
//  4. run it as the small state machine of §VI-D (NewRuntime).
package control

import (
	"fmt"

	"yukta/internal/lti"
	"yukta/internal/mat"
	"yukta/internal/robust"
	"yukta/internal/ssvctl"
	"yukta/internal/sysid"
)

// Re-exported designer-facing types.
type (
	// Spec is the designer's description of one layer's controller
	// (inputs, weights, quantization, output bounds, guardband).
	Spec = robust.Spec
	// Controller is a synthesized controller plus its robustness report.
	Controller = robust.Controller
	// Report summarizes a synthesis run (SSV, min(s), guaranteed bounds).
	Report = robust.Report
	// StateSpace is a discrete-time LTI model.
	StateSpace = lti.StateSpace
	// Dataset is recorded input/output identification data.
	Dataset = sysid.Dataset
	// Model is a fitted MIMO ARX model.
	Model = sysid.Model
	// Orders selects the ARX structure (the paper uses order 4).
	Orders = sysid.Orders
	// Scaling maps a physical signal range onto normalized units.
	Scaling = sysid.Scaling
	// Runtime executes a synthesized controller against physical signals.
	Runtime = ssvctl.Runtime
	// RuntimeConfig wires a controller to its physical signals.
	RuntimeConfig = ssvctl.Config
)

// PaperOrders is the order-4 model structure of §IV-C.
var PaperOrders = sysid.PaperOrders

// Identify fits a MIMO ARX model to recorded data (§IV-C).
func Identify(d *Dataset, ord Orders, ts float64) (*Model, error) {
	return sysid.Identify(d, ord, ts)
}

// Synthesize runs the SSV design loop of §II-C: propose candidates, evaluate
// the closed loop's structured singular value against the declared
// uncertainty, bounds and weights, and return the most aggressive certified
// candidate.
func Synthesize(spec *Spec) (*Controller, error) { return robust.Synthesize(spec) }

// SynthesizeLQG builds the §VI-B LQG baseline from the same specification
// (bounds act only as inverse output weights; no robustness certificate).
func SynthesizeLQG(spec *Spec) (*Controller, error) { return robust.SynthesizeLQG(spec) }

// NewRuntime wraps a synthesized controller in the runtime state machine
// with scaling, quantization, anti-windup and the guardband monitor.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return ssvctl.New(cfg) }

// Levels builds an evenly spaced actuator level set.
func Levels(lo, hi, step float64) []float64 { return ssvctl.Levels(lo, hi, step) }

// NewStateSpace builds a discrete-time LTI model from its matrices given in
// row-major order (A is n×n, B n×m, C p×n, D p×m).
func NewStateSpace(n, m, p int, a, b, c, d []float64, ts float64) (ss *StateSpace, err error) {
	defer func() {
		if r := recover(); r != nil {
			ss, err = nil, fmt.Errorf("control: %v", r)
		}
	}()
	return lti.NewStateSpace(
		matNew(n, n, a), matNew(n, m, b), matNew(p, n, c), matNew(p, m, d), ts)
}

// matNew adapts a row-major slice into the internal matrix type.
func matNew(r, c int, data []float64) *mat.Matrix {
	return mat.New(r, c, append([]float64(nil), data...))
}
