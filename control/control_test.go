package control

import (
	"math"
	"math/rand"
	"testing"
)

// identifyToy builds a dataset from a known first-order SISO system with one
// external signal and returns the fitted model.
func identifyToy(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	d := &Dataset{}
	state := 0.0
	for i := 0; i < 500; i++ {
		u := rng.Float64()*2 - 1
		e := rng.Float64()*2 - 1
		state = 0.6*state + 0.3*u + 0.1*e
		d.Append([]float64{u, e}, []float64{state})
	}
	m, err := Identify(d, PaperOrders, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m.Stabilize()
	return m
}

func TestPublicDesignFlow(t *testing.T) {
	m := identifyToy(t)
	ctl, err := Synthesize(&Spec{
		Plant:        m.ReducedStateSpace(6),
		NumControls:  1,
		InputWeights: []float64{1},
		InputQuanta:  []float64{0.1},
		OutputBounds: []float64{0.3},
		Uncertainty:  0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Report.SSV > 1 {
		t.Fatalf("SSV %.2f > 1 on an easy SISO plant", ctl.Report.SSV)
	}
	rt, err := NewRuntime(RuntimeConfig{
		Controller:     ctl,
		OutputScales:   []Scaling{{Min: -2, Max: 2}},
		ExternalScales: []Scaling{{Min: -1, Max: 1}},
		InputScales:    []Scaling{{Min: -1, Max: 1}},
		InputLevels:    [][]float64{Levels(-1, 1, 0.1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetTargets([]float64{0.5}); err != nil {
		t.Fatal(err)
	}
	// Close the loop on the true plant: output must approach the target.
	state := 0.0
	u, e := 0.0, 0.0
	for i := 0; i < 200; i++ {
		state = 0.6*state + 0.3*u + 0.1*e
		cmd, err := rt.Step([]float64{state * 2}, []float64{e}, []float64{u})
		if err != nil {
			t.Fatal(err)
		}
		u = cmd[0]
	}
	// Physical output = state*2, target 0.5 → state target 0.25.
	if math.Abs(state*2-0.5) > 0.12 {
		t.Fatalf("closed loop settled at %.3f, want near 0.5", state*2)
	}
}

func TestPublicLQGFlow(t *testing.T) {
	m := identifyToy(t)
	ctl, err := SynthesizeLQG(&Spec{
		Plant:        m.ReducedStateSpace(6),
		NumControls:  1,
		InputWeights: []float64{1},
		InputQuanta:  []float64{0.1},
		OutputBounds: []float64{0.3},
		Uncertainty:  0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ctl.Report.SSV) {
		t.Fatal("LQG must not carry an SSV certificate")
	}
}

func TestNewStateSpaceHelper(t *testing.T) {
	ss, err := NewStateSpace(1, 1, 1,
		[]float64{0.5}, []float64{1}, []float64{1}, []float64{0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !ss.IsStable() || ss.Order() != 1 {
		t.Fatalf("helper built wrong system: order %d", ss.Order())
	}
	if _, err := NewStateSpace(2, 1, 1,
		[]float64{0.5}, []float64{1}, []float64{1}, []float64{0}, 0.5); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestLevelsHelper(t *testing.T) {
	if got := Levels(1, 4, 1); len(got) != 4 {
		t.Fatalf("Levels(1,4,1) = %v", got)
	}
}
