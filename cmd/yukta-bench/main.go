// Command yukta-bench regenerates the tables and figures of the paper's
// evaluation (Section VI) and prints them as text tables and ASCII charts.
//
// Usage:
//
//	yukta-bench -list
//	yukta-bench -fig 9            # Figure 9 (a) and (b), full suite
//	yukta-bench -fig 9 -quick     # representative 4-app subset
//	yukta-bench -table 2          # Table II
//	yukta-bench -all              # everything (long)
//	yukta-bench -csv out/         # also dump time-series CSVs for trace figures
//	yukta-bench -faults           # robustness sweep: E×D degradation vs fault intensity
//	yukta-bench -faults -quick -faultseed 7
//	yukta-bench -faults -supervise # add the supervised SSV scheme + per-class supervised table
//	yukta-bench -faults -quick -supervise -trace traces/ -metrics
//	yukta-bench -faults -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//	yukta-bench -fleet 16             # 16 boards under a shared budget, both policies
//	yukta-bench -fleet 8 -faults -trace traces/ # fleet sweep across fault classes, with traces
//	yukta-bench -fleet 4 -fleetpolicy feedback -fleetbudget 2.0
//	yukta-bench -fleet 16 -fleet-topo 4x4     # hierarchical: 4 racks of 4 boards
//	yukta-bench -fleetscale 64,256 -scaledepths 1,2 -benchout BENCH_evloop.json
//	yukta-bench -fleet-topo 32x32 -topoguard BENCH_evloop.json # hierarchy regression gate
//	yukta-bench -tracecheck traces/ # validate recorded JSONL against the schema
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"yukta/internal/core"
	"yukta/internal/exp"
	"yukta/internal/obs"
)

var quickApps = []string{"gamess", "mcf", "blackscholes", "streamcluster"}

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 9, 10, 11, 12, 13, 14, 15a, 15b, 16a, 16b, 17, cost")
		table     = flag.Int("table", 0, "table to print: 1, 2, 3 or 4")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		quick     = flag.Bool("quick", false, "use a representative 4-app subset for suite figures")
		list      = flag.Bool("list", false, "list available artifacts")
		csvDir    = flag.String("csv", "", "directory to dump time-series CSVs for trace figures")
		parallel  = flag.Int("parallel", 0, "worker goroutines for independent runs (0 = NumCPU, 1 = sequential)")
		faults    = flag.Bool("faults", false, "run the robustness sweep (scheme × fault-intensity degradation table)")
		faultSeed = flag.Int64("faultseed", 1, "base seed of the injected fault campaign")
		supervise = flag.Bool("supervise", false, "add the supervised SSV scheme to the robustness sweep and print the per-class supervised degradation table")
		traceDir  = flag.String("trace", "", "directory for per-run flight-recorder traces (fault sweeps only)")
		metrics   = flag.Bool("metrics", false, "collect a harness-wide metrics registry and print it to stderr on exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		traceChk  = flag.String("tracecheck", "", "validate every .jsonl flight-recorder trace in this directory against the record schema, then exit")
		fleetN    = flag.Int("fleet", 0, "run the fleet sweep with this many boards under a shared power budget (0 = off); with -faults the sweep also covers the fault classes")
		fleetPol  = flag.String("fleetpolicy", "all", "fleet budget policy: equal, feedback or all")
		fleetBW   = flag.Float64("fleetbudget", exp.DefaultFleetBoardBudgetW, "per-board share of the shared fleet power budget, in watts")
		engine    = flag.String("engine", "", "simulation engine: event (default) or lockstep; both are byte-identical in results and traces")
		fleetScl  = flag.String("fleetscale", "", "run the engine scaling-curve benchmark over these comma-separated fleet sizes (e.g. 64,256)")
		benchOut  = flag.String("benchout", "", "write the scaling-curve benchmark report as JSON to this file")
		sclGuard  = flag.Bool("scaleguard", false, "fail unless the event engine beats lockstep at the largest -fleetscale size (regression gate)")
		fleetTopo = flag.String("fleet-topo", "", "coordinator topology for -fleet sweeps and -topoguard (fleet.ParseTopology grammar, e.g. 32x32 or root=a,b;a=4;b=4); empty = flat")
		sclDepths = flag.String("scaledepths", "", "with -fleetscale, also measure balanced coordinator trees at these comma-separated depths (e.g. 1,2,3)")
		topoGuard = flag.String("topoguard", "", "committed scaling report JSON (BENCH_evloop.json): re-run the -fleet-topo scenario and fail if it diverges from the committed tree point")
	)
	flag.Parse()

	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if *traceChk != "" {
		if err := checkTraces(*traceChk); err != nil {
			fatal(err)
		}
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			werr := pprof.Lookup("allocs").WriteTo(f, 0)
			cerr := f.Close()
			if werr != nil {
				fatal(werr)
			}
			if cerr != nil {
				fatal(cerr)
			}
		}()
	}

	if *list {
		fmt.Println("figures: 9 10 11 12 13 14 15a 15b 16a 16b 17 conv abl cost")
		fmt.Println("tables:  1 2 3 4")
		return
	}
	if *table != 0 {
		switch *table {
		case 1:
			fmt.Print(exp.TableI())
		case 2:
			fmt.Print(exp.TableII())
		case 3:
			fmt.Print(exp.TableIII())
		case 4:
			fmt.Print(exp.TableIV())
		default:
			fatal(fmt.Errorf("unknown table %d", *table))
		}
		return
	}
	if *fig == "" && !*all && !*faults && *fleetN == 0 && *fleetScl == "" && *topoGuard == "" {
		flag.Usage()
		os.Exit(2)
	}

	apps := exp.EvalApps()
	if *quick {
		apps = quickApps
	}

	fmt.Fprintln(os.Stderr, "building platform (identification + model fitting + controller synthesis)...")
	ctx, err := exp.NewContextWithOptions(exp.Options{
		Parallelism:  *parallel,
		Seed:         *faultSeed,
		Supervise:    *supervise,
		TraceDir:     *traceDir,
		Metrics:      *metrics,
		FleetBudgetW: *fleetBW,
		FleetTopo:    *fleetTopo,
		Engine:       eng,
	})
	if err != nil {
		fatal(err)
	}
	if ctx.Metrics != nil {
		ctx.Metrics.Publish("yukta")
		defer func() { fmt.Fprint(os.Stderr, ctx.Metrics.Render()) }()
	}

	if *topoGuard != "" {
		if *fleetTopo == "" {
			fatal(fmt.Errorf("-topoguard needs -fleet-topo to name the topology to re-run"))
		}
		committed, err := exp.ReadFleetScaleReport(*topoGuard)
		if err != nil {
			fatal(err)
		}
		if err := ctx.TreeGuard(*fleetTopo, committed); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "topology guard OK: %s matches the committed tree point\n", *fleetTopo)
		return
	}

	if *fleetScl != "" {
		ns, err := parseSizes(*fleetScl, "-fleetscale")
		if err != nil {
			fatal(err)
		}
		var rep *exp.FleetScaleReport
		if *sclDepths != "" {
			depths, derr := parseSizes(*sclDepths, "-scaledepths")
			if derr != nil {
				fatal(derr)
			}
			rep, err = ctx.FleetScaleTree(ns, depths)
		} else {
			rep, err = ctx.FleetScale(ns)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep.Render())
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				fatal(err)
			}
			werr := rep.WriteJSON(f)
			cerr := f.Close()
			if werr != nil {
				fatal(werr)
			}
			if cerr != nil {
				fatal(cerr)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
		}
		if *sclGuard {
			if err := rep.Check(); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "scale guard OK: event engine beats lockstep at the largest size")
		}
		return
	}

	if *fleetN > 0 {
		policies := []string{"equal", "feedback"}
		if *fleetPol != "all" {
			policies = []string{*fleetPol}
		}
		classes := []string{"clean"}
		if *faults {
			classes = append(classes, "dropout", "actuator", "thermal")
		}
		ft, err := ctx.FleetSweep([]int{*fleetN}, policies, classes)
		if err != nil {
			fatal(err)
		}
		fmt.Println(ft.Render())
		return
	}

	if *faults {
		rt, err := ctx.RobustnessSweep(apps, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rt.Render())
		if *supervise {
			ct, err := ctx.SupervisedClassSweep(apps, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Println(ct.Render())
		}
		if *fig == "" && !*all {
			return
		}
	}

	want := func(name string) bool { return *all || *fig == name }

	if want("9") {
		exd, times, err := ctx.Fig9(apps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exd.Render())
		fmt.Println(times.Render())
	}
	if want("10") {
		tr, err := ctx.Fig10()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.Render())
		dumpCSV(*csvDir, "fig10", tr)
	}
	if want("11") {
		tr, err := ctx.Fig11()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.Render())
		dumpCSV(*csvDir, "fig11", tr)
	}
	if want("12") || want("13") {
		exd, times, err := ctx.Fig12and13(apps)
		if err != nil {
			fatal(err)
		}
		if want("12") || *all {
			fmt.Println(exd.Render())
		}
		if want("13") || *all {
			fmt.Println(times.Render())
		}
	}
	if want("14") {
		exd, err := ctx.Fig14()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exd.Render())
	}
	if want("15a") {
		tr, err := ctx.Fig15a()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.Render())
		dumpCSV(*csvDir, "fig15a", tr)
	}
	if want("15b") {
		exd, err := ctx.Fig15b(apps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exd.Render())
	}
	if want("16a") {
		points, err := ctx.Fig16a()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.RenderGuardbandPoints(points))
	}
	if want("16b") {
		exd, err := ctx.Fig16b(apps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exd.Render())
	}
	if want("17") {
		tr, err := ctx.Fig17()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.Render())
		dumpCSV(*csvDir, "fig17", tr)
	}
	if want("abl") {
		a, err := ctx.AblationReport(apps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.RenderAblation(a))
	}
	if want("conv") {
		cv, err := ctx.ConvergenceReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.RenderConvergence(cv))
	}
	if want("cost") {
		h, err := ctx.HWCostReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.RenderHWCost(h))
	}
	if *all {
		fmt.Print(exp.TableI())
		fmt.Print(exp.TableII())
		fmt.Print(exp.TableIII())
		fmt.Print(exp.TableIV())
	}
}

// dumpCSV writes each trace of a TraceSet into dir as <prefix>-<name>.csv.
func dumpCSV(dir, prefix string, tr *exp.TraceSet) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for name, s := range tr.Series {
		clean := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				return r
			default:
				return '-'
			}
		}, name)
		path := filepath.Join(dir, prefix+"-"+clean+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		werr := s.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			fatal(werr)
		}
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

// checkTraces validates every .jsonl file in dir against the flight-recorder
// schemas and reports per-file record counts. Files named *.fleet.jsonl are
// coordination-layer traces and validate against the fleet schema; everything
// else validates against the per-run record schema.
func checkTraces(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .jsonl traces in %s", dir)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		validate := obs.ValidateJSONL
		if strings.HasSuffix(path, ".fleet.jsonl") {
			validate = obs.ValidateFleetJSONL
		}
		n, verr := validate(f)
		cerr := f.Close()
		if verr != nil {
			return fmt.Errorf("%s: %w", path, verr)
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("%s: %d records OK\n", path, n)
	}
	return nil
}

// parseSizes parses a comma-separated list of positive integers for the
// named flag (-fleetscale sizes, -scaledepths depths).
func parseSizes(s, flagName string) ([]int, error) {
	var ns []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid value %q in %s", part, flagName)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("%s needs at least one value", flagName)
	}
	return ns, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yukta-bench:", err)
	os.Exit(1)
}
