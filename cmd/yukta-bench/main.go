// Command yukta-bench regenerates the tables and figures of the paper's
// evaluation (Section VI) and prints them as text tables and ASCII charts.
//
// Usage:
//
//	yukta-bench -list
//	yukta-bench -fig 9            # Figure 9 (a) and (b), full suite
//	yukta-bench -fig 9 -quick     # representative 4-app subset
//	yukta-bench -table 2          # Table II
//	yukta-bench -all              # everything (long)
//	yukta-bench -csv out/         # also dump time-series CSVs for trace figures
//	yukta-bench -faults           # robustness sweep: E×D degradation vs fault intensity
//	yukta-bench -faults -quick -faultseed 7
//	yukta-bench -faults -supervise # add the supervised SSV scheme + per-class supervised table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"yukta/internal/exp"
)

var quickApps = []string{"gamess", "mcf", "blackscholes", "streamcluster"}

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 9, 10, 11, 12, 13, 14, 15a, 15b, 16a, 16b, 17, cost")
		table     = flag.Int("table", 0, "table to print: 1, 2, 3 or 4")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		quick     = flag.Bool("quick", false, "use a representative 4-app subset for suite figures")
		list      = flag.Bool("list", false, "list available artifacts")
		csvDir    = flag.String("csv", "", "directory to dump time-series CSVs for trace figures")
		parallel  = flag.Int("parallel", 0, "worker goroutines for independent runs (0 = NumCPU, 1 = sequential)")
		faults    = flag.Bool("faults", false, "run the robustness sweep (scheme × fault-intensity degradation table)")
		faultSeed = flag.Int64("faultseed", 1, "base seed of the injected fault campaign")
		supervise = flag.Bool("supervise", false, "add the supervised SSV scheme to the robustness sweep and print the per-class supervised degradation table")
	)
	flag.Parse()

	if *list {
		fmt.Println("figures: 9 10 11 12 13 14 15a 15b 16a 16b 17 conv abl cost")
		fmt.Println("tables:  1 2 3 4")
		return
	}
	if *table != 0 {
		switch *table {
		case 1:
			fmt.Print(exp.TableI())
		case 2:
			fmt.Print(exp.TableII())
		case 3:
			fmt.Print(exp.TableIII())
		case 4:
			fmt.Print(exp.TableIV())
		default:
			fatal(fmt.Errorf("unknown table %d", *table))
		}
		return
	}
	if *fig == "" && !*all && !*faults {
		flag.Usage()
		os.Exit(2)
	}

	apps := exp.EvalApps()
	if *quick {
		apps = quickApps
	}

	fmt.Fprintln(os.Stderr, "building platform (identification + model fitting + controller synthesis)...")
	ctx, err := exp.NewContextWithOptions(exp.Options{Parallelism: *parallel, Seed: *faultSeed, Supervise: *supervise})
	if err != nil {
		fatal(err)
	}

	if *faults {
		rt, err := ctx.RobustnessSweep(apps, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rt.Render())
		if *supervise {
			ct, err := ctx.SupervisedClassSweep(apps, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Println(ct.Render())
		}
		if *fig == "" && !*all {
			return
		}
	}

	want := func(name string) bool { return *all || *fig == name }

	if want("9") {
		exd, times, err := ctx.Fig9(apps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exd.Render())
		fmt.Println(times.Render())
	}
	if want("10") {
		tr, err := ctx.Fig10()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.Render())
		dumpCSV(*csvDir, "fig10", tr)
	}
	if want("11") {
		tr, err := ctx.Fig11()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.Render())
		dumpCSV(*csvDir, "fig11", tr)
	}
	if want("12") || want("13") {
		exd, times, err := ctx.Fig12and13(apps)
		if err != nil {
			fatal(err)
		}
		if want("12") || *all {
			fmt.Println(exd.Render())
		}
		if want("13") || *all {
			fmt.Println(times.Render())
		}
	}
	if want("14") {
		exd, err := ctx.Fig14()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exd.Render())
	}
	if want("15a") {
		tr, err := ctx.Fig15a()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.Render())
		dumpCSV(*csvDir, "fig15a", tr)
	}
	if want("15b") {
		exd, err := ctx.Fig15b(apps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exd.Render())
	}
	if want("16a") {
		points, err := ctx.Fig16a()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.RenderGuardbandPoints(points))
	}
	if want("16b") {
		exd, err := ctx.Fig16b(apps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exd.Render())
	}
	if want("17") {
		tr, err := ctx.Fig17()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.Render())
		dumpCSV(*csvDir, "fig17", tr)
	}
	if want("abl") {
		a, err := ctx.AblationReport(apps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.RenderAblation(a))
	}
	if want("conv") {
		cv, err := ctx.ConvergenceReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.RenderConvergence(cv))
	}
	if want("cost") {
		h, err := ctx.HWCostReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.RenderHWCost(h))
	}
	if *all {
		fmt.Print(exp.TableI())
		fmt.Print(exp.TableII())
		fmt.Print(exp.TableIII())
		fmt.Print(exp.TableIV())
	}
}

// dumpCSV writes each trace of a TraceSet into dir as <prefix>-<name>.csv.
func dumpCSV(dir, prefix string, tr *exp.TraceSet) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for name, s := range tr.Series {
		clean := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				return r
			default:
				return '-'
			}
		}, name)
		path := filepath.Join(dir, prefix+"-"+clean+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		werr := s.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			fatal(werr)
		}
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yukta-bench:", err)
	os.Exit(1)
}
