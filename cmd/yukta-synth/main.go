// Command yukta-synth runs the Yukta design process end to end — system
// identification on the simulated board, SSV controller synthesis for both
// layers, and the Figure 3 validation stage — and prints the design reports
// (SSV value, min(s), guaranteed bounds, controller dimensions).
//
// Usage:
//
//	yukta-synth
//	yukta-synth -guardband 1.5 -perf-bound 0.3 -weight 2
package main

import (
	"flag"
	"fmt"
	"os"

	"yukta"
)

func main() {
	var (
		guardband = flag.Float64("guardband", 0.4, "HW uncertainty guardband (0.4 = ±40%)")
		perfBound = flag.Float64("perf-bound", 0.2, "performance deviation bound (fraction of range)")
		critBound = flag.Float64("crit-bound", 0.1, "power/temperature deviation bound (fraction of range)")
		weight    = flag.Float64("weight", 1, "input weight for all HW inputs")
		orders    = flag.Bool("orders", false, "also run cross-validated model-order selection (§IV-C)")
	)
	flag.Parse()

	fmt.Fprintln(os.Stderr, "running system identification on the simulated board...")
	p, err := yukta.NewDefaultPlatform()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("identified models: HW %d states, OS %d states (order-4 MIMO ARX, reduced)\n",
		p.HW.Order(), p.OS.Order())

	if *orders {
		fmt.Println("\ncross-validated model-order selection (HW signals):")
		scores, best, err := p.SelectHWOrder(6)
		if err != nil {
			fatal(err)
		}
		for _, s := range scores {
			marker := " "
			if s.Orders == best {
				marker = "*"
			}
			fmt.Printf("  %s order %d: validation RMSE %.4f (train %.4f)\n",
				marker, s.Orders.NA, s.ValRMSE, s.TrainRMSE)
		}
		fmt.Printf("  selected order %d; the paper uses order 4 (§IV-C)\n", best.NA)
	}

	hp := yukta.DefaultHWParams()
	hp.Uncertainty = *guardband
	hp.PerfBoundFrac = *perfBound
	hp.CriticalBoundFrac = *critBound
	hp.InputWeight = *weight

	fmt.Fprintln(os.Stderr, "synthesizing + validating the hardware SSV controller...")
	hw, err := p.HWControllerValidated(hp)
	if err != nil {
		fatal(err)
	}
	report("hardware (Table II)", hw)

	fmt.Fprintln(os.Stderr, "synthesizing + validating the software SSV controller...")
	os_, err := p.OSControllerValidated(yukta.DefaultOSParams())
	if err != nil {
		fatal(err)
	}
	report("software (Table III)", os_)
}

func report(name string, c *yukta.Controller) {
	fmt.Printf("\n%s controller\n", name)
	fmt.Printf("  dimensions: N=%d, I=%d, O=%d, E=%d\n",
		c.Report.StateDim, c.NumCtrl, c.NumOut, c.NumExt)
	if c.Report.SSVLower > 0 {
		fmt.Printf("  SSV in [%.3f, %.3f]  (min(s) = %.3f; robust iff min(s) >= 1)\n",
			c.Report.SSVLower, c.Report.SSV, c.Report.MinS)
	} else {
		fmt.Printf("  SSV = %.3f  (min(s) = %.3f; robust iff min(s) >= 1)\n", c.Report.SSV, c.Report.MinS)
	}
	fmt.Printf("  control penalty rho = %g after %d candidate(s)\n",
		c.Report.ControlPenalty, c.Report.Iterations)
	fmt.Printf("  guaranteed output deviation bounds (normalized):")
	for _, b := range c.Report.GuaranteedBounds {
		fmt.Printf(" %.2f", b)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yukta-synth:", err)
	os.Exit(1)
}
