// Command yukta-serve hosts the controller stack as a long-running
// multi-tenant HTTP service: concurrent board sessions created, stepped,
// tripped and traced over a small JSON API (docs/API.md), with per-tenant
// admission control and a graceful SIGTERM drain that walks every live
// session through the supervisory staged fallback.
//
// Usage:
//
//	yukta-serve                          # listen on :8871
//	yukta-serve -addr :9000 -max-sessions 16
//	yukta-serve -tenant-rate 2 -tenant-burst 4
//	yukta-serve -data-dir /var/lib/yukta # durable sessions (write-ahead log)
//	yukta-serve -data-dir /var/lib/yukta -recover   # replay sessions after a crash
//	yukta-serve -idle-ttl 30m            # reap sessions idle for half an hour
//	yukta-serve -smoke                   # self-test: serve+exercise+recover+drain, then exit
//
// With -data-dir set, every session mutation is appended to a per-session
// write-ahead log and fsync'd before the request is acknowledged; after a
// crash, -recover reconstructs every live session by deterministic replay
// before the daemon accepts traffic (endpoints answer 503 "recovering"
// until the fence lifts). See docs/OPERATIONS.md for the operator's guide
// (durability, metrics, pprof, drain runbook) and docs/API.md for the
// endpoint reference.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"yukta/internal/board"
	"yukta/internal/client"
	"yukta/internal/core"
	"yukta/internal/obs"
	"yukta/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8871", "listen address")
		maxSessions = flag.Int("max-sessions", 64, "global cap on concurrently open sessions")
		tenantRate  = flag.Float64("tenant-rate", 4, "per-tenant session-creation rate (sessions/s; negative disables)")
		tenantBurst = flag.Int("tenant-burst", 8, "per-tenant creation burst (token-bucket capacity)")
		drainSteps  = flag.Int("drain-steps", 20, "control intervals each live session settles under the fallback during drain")
		drainPar    = flag.Int("drain-parallel", 0, "drain worker fan-out (0 = NumCPU)")
		maxStep     = flag.Int("max-step", 10000, "cap on intervals per step request")
		dataDir     = flag.String("data-dir", "", "durable session-state directory (per-session write-ahead logs); empty disables durability")
		doRecover   = flag.Bool("recover", false, "replay the session write-ahead logs left in -data-dir before accepting traffic")
		idleTTL     = flag.Duration("idle-ttl", 0, "close sessions idle longer than this, freeing their slots (0 disables)")
		logFormat   = flag.String("log", "text", "structured-log format on stderr: text, json, or off")
		version     = flag.Bool("version", false, "print build identity (version/revision + Go toolchain) and exit")
		smoke       = flag.Bool("smoke", false, "self-test: start the daemon, exercise the API end to end (crash recovery included), drain, exit")
	)
	flag.Parse()

	if *version {
		v, goVersion := serve.BuildInfo()
		fmt.Printf("yukta-serve %s (%s)\n", v, goVersion)
		return
	}
	logger, err := buildLogger(*logFormat)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintln(os.Stderr, "yukta-serve: building platform (identification + synthesis)...")
	p, err := core.NewPlatform(board.DefaultConfig(), core.DefaultIdentifyOptions())
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Platform:           p,
		MaxSessions:        *maxSessions,
		TenantRate:         *tenantRate,
		TenantBurst:        *tenantBurst,
		DrainSteps:         *drainSteps,
		DrainParallelism:   *drainPar,
		MaxStepsPerRequest: *maxStep,
		DataDir:            *dataDir,
		IdleTTL:            *idleTTL,
		Log:                logger,
	})
	if err != nil {
		fatal(err)
	}
	srv.Registry().Publish("yukta")

	// Leftover write-ahead logs are a deliberate fork in the road: replaying
	// them silently could resurrect sessions the operator believed gone, and
	// ignoring them would strand durable state. Make the operator choose.
	if srv.NeedsRecovery() && !*doRecover {
		fatal(fmt.Errorf("data dir %q holds session logs from a previous run; pass -recover to replay them, or clean %s/sessions to discard", *dataDir, *dataDir))
	}

	if *smoke {
		if srv.NeedsRecovery() {
			fmt.Fprintf(os.Stderr, "yukta-serve: %s\n", srv.Recover())
		}
		if err := runSmoke(srv, p); err != nil {
			fatal(fmt.Errorf("smoke: %w", err))
		}
		fmt.Println("yukta-serve: smoke OK")
		return
	}

	// The listener comes up before recovery replays: the startup fence
	// answers every /v1 request 503 "recovering" (with Retry-After) until
	// Recover returns, so clients see a consistent retryable signal instead
	// of connection-refused.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		fmt.Fprintf(os.Stderr, "yukta-serve: listening on %s\n", *addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	if srv.NeedsRecovery() {
		fmt.Fprintln(os.Stderr, "yukta-serve: recovering sessions...")
		fmt.Fprintf(os.Stderr, "yukta-serve: %s\n", srv.Recover())
	}

	if *idleTTL > 0 {
		reapCtx, reapCancel := context.WithCancel(context.Background())
		defer reapCancel()
		interval := *idleTTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		if interval > 30*time.Second {
			interval = 30 * time.Second
		}
		go srv.RunReaper(reapCtx, interval)
	}

	// SIGTERM/SIGINT: stop admitting, walk every live session through the
	// supervisory staged fallback, then close the listener.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Fprintln(os.Stderr, "yukta-serve: draining...")
	rep := srv.Drain(context.Background())
	fmt.Fprintf(os.Stderr, "yukta-serve: drained %d/%d sessions (%d tripped to fallback, %d already finished)\n",
		rep.Drained, rep.Sessions, rep.Tripped, rep.Finished)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fatal(err)
	}
}

// runSmoke is the CI self-test: serve on a loopback ephemeral port, drive
// the full session lifecycle as an HTTP client (create, step to completion,
// trip a supervised session, validate the streamed trace), run a crash-
// recovery round trip on a scratch data dir, then drain and verify zero
// drops.
func runSmoke(srv *serve.Server, p *core.Platform) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "yukta-serve: smoke daemon on %s\n", base)

	// Create a supervised session and a plain one.
	var sup, plain struct {
		ID         string `json:"id"`
		Supervised bool   `json:"supervised"`
	}
	if err := call("POST", base+"/v1/sessions",
		`{"scheme":"yukta-supervised","app":"gamess","fault_class":"all","fault_seed":7,"fault_intensity":1,"max_time_s":30}`,
		&sup, http.StatusCreated); err != nil {
		return err
	}
	if !sup.Supervised {
		return fmt.Errorf("supervised session not reported supervised")
	}
	if err := call("POST", base+"/v1/sessions",
		`{"scheme":"coordinated","app":"mcf","max_time_s":10}`, &plain, http.StatusCreated); err != nil {
		return err
	}

	// Step the plain session to completion; partially step the supervised
	// one and force a trip.
	var sr struct {
		Done     bool   `json:"done"`
		SupState string `json:"sup_state"`
	}
	for i := 0; !sr.Done; i++ {
		if err := call("POST", base+"/v1/sessions/"+plain.ID+"/step", `{"steps":50}`, &sr, http.StatusOK); err != nil {
			return err
		}
		if i > 1000 {
			return fmt.Errorf("plain session never finished")
		}
	}
	if err := call("POST", base+"/v1/sessions/"+sup.ID+"/step", `{"steps":10}`, nil, http.StatusOK); err != nil {
		return err
	}
	if err := call("POST", base+"/v1/sessions/"+sup.ID+"/trip", "", nil, http.StatusOK); err != nil {
		return err
	}
	var after struct {
		SupState string `json:"sup_state"`
	}
	if err := call("POST", base+"/v1/sessions/"+sup.ID+"/step", `{"steps":1}`, &after, http.StatusOK); err != nil {
		return err
	}
	if after.SupState != "fallback" {
		return fmt.Errorf("post-trip state %q, want fallback", after.SupState)
	}

	// The streamed trace must validate against the flight-record schema.
	resp, err := http.Get(base + "/v1/sessions/" + sup.ID + "/trace")
	if err != nil {
		return err
	}
	trace, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	n, err := obs.ValidateJSONL(bytes.NewReader(trace))
	if err != nil {
		return fmt.Errorf("trace invalid after %d records: %w", n, err)
	}
	fmt.Fprintf(os.Stderr, "yukta-serve: smoke trace valid (%d records)\n", n)

	// Metrics must render as JSON and carry the serve counters.
	var metrics map[string]any
	if err := call("GET", base+"/v1/metrics", "", &metrics, http.StatusOK); err != nil {
		return err
	}
	if _, ok := metrics["serve_sessions_created_total/default"]; !ok {
		return fmt.Errorf("metrics missing serve_sessions_created_total/default")
	}

	// The Prometheus exposition must parse strictly, agree with the JSON
	// snapshot on every counter, and a live /watch stream must deliver.
	if err := smokeTelemetry(base); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}

	// Crash-recovery round trip on a scratch data dir: create and partially
	// step a durable session, abandon the daemon without any shutdown, and
	// verify a fresh daemon over the same dir replays it to the exact step.
	if err := smokeRecovery(p); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}

	// Drain: zero drops, then clean shutdown.
	rep := srv.Drain(context.Background())
	if rep.Drained != rep.Sessions {
		return fmt.Errorf("drain dropped sessions: %+v", rep)
	}
	fmt.Fprintf(os.Stderr, "yukta-serve: smoke drain %d/%d (tripped=%d finished=%d)\n",
		rep.Drained, rep.Sessions, rep.Tripped, rep.Finished)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(ctx)
}

// smokeRecovery is the in-process crash-recovery leg of the smoke test: a
// durable daemon A hosts a partially stepped supervised session (trip
// included, so replay exercises the supervisory machine), is abandoned
// mid-flight with no shutdown of any kind, and a daemon B over the same
// data dir must replay the session to the exact logged position and step it
// to completion.
func smokeRecovery(p *core.Platform) error {
	dir, err := os.MkdirTemp("", "yukta-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	a, err := serve.New(serve.Config{Platform: p, DataDir: dir, TenantRate: -1})
	if err != nil {
		return err
	}
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hsA := &http.Server{Handler: a.Handler()}
	go func() { _ = hsA.Serve(lnA) }()
	baseA := "http://" + lnA.Addr().String()

	var sess struct {
		ID string `json:"id"`
	}
	if err := call("POST", baseA+"/v1/sessions",
		`{"scheme":"yukta-supervised","app":"gamess","fault_class":"all","fault_seed":7,"fault_intensity":1,"max_time_s":30}`,
		&sess, http.StatusCreated); err != nil {
		return err
	}
	var st struct {
		Steps int `json:"steps"`
	}
	if err := call("POST", baseA+"/v1/sessions/"+sess.ID+"/step", `{"steps":17,"seq":1}`, &st, http.StatusOK); err != nil {
		return err
	}
	if err := call("POST", baseA+"/v1/sessions/"+sess.ID+"/trip", "", nil, http.StatusOK); err != nil {
		return err
	}
	if err := call("POST", baseA+"/v1/sessions/"+sess.ID+"/step", `{"steps":5,"seq":2}`, &st, http.StatusOK); err != nil {
		return err
	}
	// Abandon A: close only the listener, exactly what a SIGKILL leaves
	// behind (every acknowledged record is already fsync'd).
	lnA.Close()

	b, err := serve.New(serve.Config{Platform: p, DataDir: dir, TenantRate: -1})
	if err != nil {
		return err
	}
	if !b.NeedsRecovery() {
		return fmt.Errorf("daemon B sees no logs to recover in %s", dir)
	}
	rep := b.Recover()
	fmt.Fprintf(os.Stderr, "yukta-serve: smoke %s\n", rep)
	if rep.Recovered != 1 || rep.Abandoned != 0 {
		return fmt.Errorf("recover report %+v, want 1 recovered, 0 abandoned", rep)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer lnB.Close()
	hsB := &http.Server{Handler: b.Handler()}
	go func() { _ = hsB.Serve(lnB) }()
	baseB := "http://" + lnB.Addr().String()

	var info struct {
		Steps    int    `json:"steps"`
		SupState string `json:"sup_state"`
		Done     bool   `json:"done"`
	}
	if err := call("GET", baseB+"/v1/sessions/"+sess.ID, "", &info, http.StatusOK); err != nil {
		return err
	}
	if info.Steps != st.Steps {
		return fmt.Errorf("recovered session at step %d, want %d", info.Steps, st.Steps)
	}
	for i := 0; !info.Done; i++ {
		if err := call("POST", baseB+"/v1/sessions/"+sess.ID+"/step", `{"steps":50}`, &info, http.StatusOK); err != nil {
			return err
		}
		if i > 1000 {
			return fmt.Errorf("recovered session never finished")
		}
	}
	if err := call("DELETE", baseB+"/v1/sessions/"+sess.ID, "", nil, http.StatusOK); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hsB.Shutdown(ctx)
}

// buildLogger maps the -log flag onto a slog.Logger writing to stderr ("off"
// returns nil, which serve.New replaces with a discarding logger).
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return nil, nil
	}
	return nil, fmt.Errorf("unknown -log format %q (want text, json or off)", format)
}

// smokeTelemetry is the observability leg of the smoke test: scrape the
// Prometheus exposition, parse it strictly, verify every counter in the JSON
// snapshot appears in the scrape with the identical value (single-source
// check), then watch a live session's event stream to its done sentinel.
func smokeTelemetry(base string) error {
	// Drift check: JSON snapshot first, then the scrape. Nothing between the
	// two requests increments a counter (request telemetry records only
	// histograms), so every counter must agree exactly.
	var snap map[string]any
	if err := call("GET", base+"/v1/metrics", "", &snap, http.StatusOK); err != nil {
		return err
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	samples, err := obs.ParsePrometheus(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("/metrics failed the exposition-format parse: %w", err)
	}
	byKey := make(map[string]float64, len(samples))
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	counters := 0
	for name, v := range snap {
		val, ok := v.(float64)
		if !ok {
			continue // gauges and histograms render as objects
		}
		got, ok := byKey[promKey(name)]
		if !ok {
			return fmt.Errorf("counter %q missing from /metrics (looked for %q)", name, promKey(name))
		}
		if got != val {
			return fmt.Errorf("counter %q drifted: /v1/metrics %v, /metrics %v", name, val, got)
		}
		counters++
	}
	if counters == 0 {
		return fmt.Errorf("no counters to compare between /v1/metrics and /metrics")
	}
	fmt.Fprintf(os.Stderr, "yukta-serve: smoke /metrics parses, %d counters agree with /v1/metrics\n", counters)

	// Live watch: stream a fresh session while stepping it, and require at
	// least one record plus the done sentinel.
	c := client.New(client.Config{Base: base})
	sess, _, err := c.CreateSession(serve.CreateRequest{Scheme: "coordinated", App: "mcf", MaxTimeS: 10})
	if err != nil {
		return err
	}
	watched := 0
	watchErr := make(chan error, 1)
	connected := make(chan struct{})
	go func() {
		watchErr <- sess.Watch(context.Background(), func(rec []byte) error {
			watched++
			return nil
		}, client.WatchConnected(connected))
	}()
	select {
	case <-connected:
	case err := <-watchErr:
		return fmt.Errorf("watch stream failed to attach: %w", err)
	}
	steps, err := sess.StepToDone(7)
	if err != nil {
		return err
	}
	select {
	case err := <-watchErr:
		if err != nil {
			return fmt.Errorf("watch stream: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("watch stream never reached its done sentinel")
	}
	// Attached before the first step, so the stream must carry the whole run.
	if watched != steps {
		return fmt.Errorf("watch stream delivered %d records; run executed %d intervals", watched, steps)
	}
	fmt.Fprintf(os.Stderr, "yukta-serve: smoke watch streamed %d/%d records to done\n", watched, steps)
	return nil
}

// promKey maps a registry counter name onto its Prometheus sample key
// ("serve_steps_total/default" → `serve_steps_total{key="default"}`).
func promKey(name string) string {
	family, key, ok := strings.Cut(name, "/")
	if !ok {
		return family
	}
	return fmt.Sprintf("%s{key=%q}", family, key)
}

// call issues one JSON request, checks the status, and decodes into out.
func call(method, url, body string, out any, want int) error {
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, want, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yukta-serve:", err)
	os.Exit(1)
}
