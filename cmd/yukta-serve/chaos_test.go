package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"yukta/internal/board"
	"yukta/internal/client"
	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/serve"
	"yukta/internal/workload"
)

// The chaos test SIGKILLs a real durable daemon mid-session at randomized
// step offsets and requires the recovered, resumed run to finish
// byte-identical to one that never crashed. The daemon under test is a
// child process re-executing this test binary (TestMain dispatches on
// YUKTA_CHAOS_CHILD), so the kill is a true process kill — no deferred
// flushes, no graceful anything — and the only state that survives is what
// the write-ahead log fsync'd before each acknowledgment.

func TestMain(m *testing.M) {
	if os.Getenv("YUKTA_CHAOS_CHILD") == "1" {
		chaosChild()
		return
	}
	os.Exit(m.Run())
}

// chaosChild is the daemon under test: a durable serve.Server on a fixed
// parent-chosen address. The listener comes up before recovery (the parent's
// client must see the 503 fence, not connection-refused) and the process
// then blocks until killed.
func chaosChild() {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "chaos child:", err)
		os.Exit(1)
	}
	p, err := core.NewPlatform(board.DefaultConfig(), core.DefaultIdentifyOptions())
	if err != nil {
		die(err)
	}
	srv, err := serve.New(serve.Config{
		Platform:   p,
		TenantRate: -1,
		DataDir:    os.Getenv("YUKTA_CHAOS_DATA"),
	})
	if err != nil {
		die(err)
	}
	// The previous incarnation died with established connections on this
	// port; retry the bind briefly rather than racing the kernel's cleanup.
	var ln net.Listener
	for i := 0; ; i++ {
		if ln, err = net.Listen("tcp", os.Getenv("YUKTA_CHAOS_ADDR")); err == nil {
			break
		}
		if i > 100 {
			die(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	if srv.NeedsRecovery() {
		if os.Getenv("YUKTA_CHAOS_RECOVER") != "1" {
			die(fmt.Errorf("leftover logs but no recover flag"))
		}
		fmt.Fprintf(os.Stderr, "chaos child: %s\n", srv.Recover())
	}
	select {}
}

// chaosPlatform builds the parent's reference platform once.
var (
	chaosPlatOnce sync.Once
	chaosPlat     *core.Platform
	chaosPlatErr  error
)

func chaosPlatform(t *testing.T) *core.Platform {
	t.Helper()
	chaosPlatOnce.Do(func() {
		chaosPlat, chaosPlatErr = core.NewPlatform(board.DefaultConfig(), core.DefaultIdentifyOptions())
	})
	if chaosPlatErr != nil {
		t.Fatal(chaosPlatErr)
	}
	return chaosPlat
}

// spawnChaosDaemon starts (or restarts) the daemon child and waits for its
// /healthz to answer — possibly still behind the recovery fence, which is
// the hardened client's problem to wait out.
func spawnChaosDaemon(t *testing.T, dataDir, addr string, doRecover bool) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	rec := "0"
	if doRecover {
		rec = "1"
	}
	cmd.Env = append(os.Environ(),
		"YUKTA_CHAOS_CHILD=1",
		"YUKTA_CHAOS_DATA="+dataDir,
		"YUKTA_CHAOS_ADDR="+addr,
		"YUKTA_CHAOS_RECOVER="+rec,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaos daemon on %s never became healthy: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// sigkill delivers an immediate SIGKILL and reaps the child.
func sigkill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
}

// corruptWALTail flips one byte in the log's final record, simulating the
// torn/damaged tail a crash mid-write leaves: recovery must truncate it and
// resume from the last valid record.
func corruptWALTail(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 8 {
		t.Fatalf("log %s too short to corrupt (%d bytes)", path, len(raw))
	}
	raw[len(raw)-5] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryChaos is the end-to-end durability gate: a hosted
// faulted session is driven through the hardened client while the daemon is
// SIGKILLed at two randomized step offsets (the second kill also corrupts
// the log's tail byte, forcing the truncate-and-roll-back path) and
// restarted with recovery each time. The client never sees anything but
// retryable errors, the retried sequence numbers never double-advance the
// run, and the final trace must be byte-identical to an uninterrupted batch
// run of the same tuple.
func TestCrashRecoveryChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("crash chaos needs subprocess restarts")
	}

	// Uninterrupted reference: the batch engine over the same tuple the
	// session will be created with (no operator trips in this run, so the
	// corrupted tail record is always a step batch and roll-back converges;
	// the coordinated scheme keeps replay cost at the WAL's mercy rather
	// than the supervised stack's synthesis time — supervised recovery is
	// gated in the serve package and the daemon's -smoke).
	p := chaosPlatform(t)
	w, err := workload.Lookup("gamess")
	if err != nil {
		t.Fatal(err)
	}
	refRec := obs.NewRecorder(0)
	if _, err := core.Run(p.Cfg, serve.DefaultSchemes(p)["coordinated"], w, core.RunOptions{
		MaxTime:    30 * time.Second,
		SkipSeries: true,
		Trace:      refRec,
		Engine:     core.EngineEvent,
		Faults:     fault.PresetClass(7, 1.0, "all"),
	}); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := refRec.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	seed := time.Now().UnixNano()
	t.Logf("chaos seed %d", seed)
	rng := rand.New(rand.NewSource(seed))

	// A fixed parent-chosen port keeps the client's base URL stable across
	// daemon incarnations.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()
	dataDir := t.TempDir()

	cmd := spawnChaosDaemon(t, dataDir, addr, false)
	cl := client.New(client.Config{
		Base:        "http://" + addr,
		MaxAttempts: 100,
		BackoffBase: 50 * time.Millisecond,
		BackoffCap:  time.Second,
		JitterSeed:  seed,
		Logf:        t.Logf,
	})
	sess, info, err := cl.CreateSession(serve.CreateRequest{
		Scheme: "coordinated", App: "gamess",
		FaultClass: "all", FaultSeed: 7, FaultIntensity: 1, MaxTimeS: 30,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two kill offsets inside the 60-step run, in random chunk sizes.
	kills := []int{5 + rng.Intn(16), 25 + rng.Intn(16)}
	pos := 0
	for killN, killAt := range kills {
		for pos < killAt {
			resp, err := sess.Step(1 + rng.Intn(9))
			if err != nil {
				t.Fatalf("step toward kill %d: %v", killAt, err)
			}
			pos = resp.Steps
			if resp.Done {
				t.Fatalf("session finished at step %d before kill offset %d", pos, killAt)
			}
		}
		t.Logf("SIGKILL at step %d", pos)
		sigkill(t, cmd)
		if killN == 1 {
			corruptWALTail(t, filepath.Join(dataDir, "sessions", info.ID+".wal"))
		}
		cmd = spawnChaosDaemon(t, dataDir, addr, true)
	}

	if _, err := sess.StepToDone(1 + rng.Intn(9)); err != nil {
		t.Fatal(err)
	}

	// The resumed run's trace must be byte-identical to the uninterrupted
	// reference.
	var got bytes.Buffer
	if err := sess.WriteTrace(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("post-chaos trace differs from uninterrupted trace (%d vs %d bytes)", got.Len(), want.Len())
	}

	// The final incarnation's metrics must account for the recovery: one
	// session recovered, one truncated tail (the corrupted record).
	resp, err := http.Get("http://" + addr + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := metrics["serve_recovered_sessions_total"].(float64); got != 1 {
		t.Errorf("serve_recovered_sessions_total = %v; want 1", metrics["serve_recovered_sessions_total"])
	}
	if got, _ := metrics["serve_recover_truncated_total"].(float64); got != 1 {
		t.Errorf("serve_recover_truncated_total = %v; want 1", metrics["serve_recover_truncated_total"])
	}

	if err := sess.Delete(); err != nil {
		t.Fatal(err)
	}
	sigkill(t, cmd)
}
