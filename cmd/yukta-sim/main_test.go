package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"yukta/internal/board"
	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/serve"
	"yukta/internal/workload"
)

// TestRunViaSurvivesDaemonCrash drives the -via path through a daemon
// "crash" with a lost response: a front-door handler forwards to a durable
// daemon A until a chosen step request, executes that request (so it is
// acknowledged in the write-ahead log) but drops the response on the floor
// and swaps the backend to a freshly recovered daemon B over the same data
// dir. The hardened client must retry the lost request — its idempotency
// sequence number hitting B's recovered cache rather than re-executing —
// and the -record file must come out byte-identical to an uninterrupted
// batch run of the same tuple.
func TestRunViaSurvivesDaemonCrash(t *testing.T) {
	p, err := core.NewPlatform(board.DefaultConfig(), core.DefaultIdentifyOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sA, err := serve.New(serve.Config{Platform: p, TenantRate: -1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu      sync.Mutex
		backend http.Handler = sA.Handler()
		steps   int
		crashed bool
	)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		// runVia's 500-interval chunks cover this run in a single step
		// request — crash on exactly that one, after it executed.
		if !crashed && r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/step") {
			steps++
			if steps == 1 {
				crashed = true
				cur := backend
				mu.Unlock()
				// Execute against A — the mutation lands in the WAL — but
				// lose the response, exactly what a crash between fsync and
				// reply looks like to the client.
				cur.ServeHTTP(httptest.NewRecorder(), r)
				sB, err := serve.New(serve.Config{Platform: p, TenantRate: -1, DataDir: dir})
				if err != nil {
					t.Error(err)
					panic(http.ErrAbortHandler)
				}
				rep := sB.Recover()
				if rep.Recovered != 1 {
					t.Errorf("recover report %+v; want 1 recovered", rep)
				}
				mu.Lock()
				backend = sB.Handler()
				mu.Unlock()
				panic(http.ErrAbortHandler)
			}
		}
		cur := backend
		mu.Unlock()
		cur.ServeHTTP(w, r)
	}))
	defer front.Close()

	record := filepath.Join(t.TempDir(), "run.jsonl")
	if err := runVia(front.URL, "coordinated", "gamess", "", 30*time.Second, 1.0, 7, record, false); err != nil {
		t.Fatalf("runVia across the crash: %v", err)
	}

	// Uninterrupted reference: the batch engine over the tuple runVia sent.
	w, err := workload.Lookup("gamess")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	if _, err := core.Run(p.Cfg, serve.DefaultSchemes(p)["coordinated"], w, core.RunOptions{
		MaxTime:    30 * time.Second,
		SkipSeries: true,
		Trace:      rec,
		Engine:     core.EngineEvent,
		Faults:     fault.PresetClass(7, 1.0, "all"),
	}); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := rec.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(record)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got) {
		t.Fatalf("-record across a crash differs from the batch trace (%d vs %d bytes)", len(got), want.Len())
	}
	if !crashed {
		t.Fatal("the crash injection never fired")
	}
	// runVia's final DELETE went to daemon B: the session is gone and its
	// log discarded, so nothing is left to recover.
	sC, err := serve.New(serve.Config{Platform: p, TenantRate: -1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if sC.NeedsRecovery() {
		t.Fatal("session log survived the -via delete")
	}
}
