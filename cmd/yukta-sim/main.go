// Command yukta-sim runs one workload under one controller scheme on the
// simulated ODROID XU3 board and prints the measured outcome plus ASCII
// traces of power and performance.
//
// Usage:
//
//	yukta-sim -app blackscholes -scheme yukta-full
//	yukta-sim -app mcf -scheme coordinated -trace
//	yukta-sim -app gamess -scheme yukta-supervised -faults 2 -record run.jsonl
//	yukta-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"yukta"
)

func schemes(p *yukta.Platform) map[string]yukta.Scheme {
	return map[string]yukta.Scheme{
		"coordinated":      p.CoordinatedHeuristic(),
		"decoupled":        p.DecoupledHeuristic(),
		"yukta-hw":         p.YuktaHWSSVOSHeuristic(yukta.DefaultHWParams()),
		"yukta-full":       p.YuktaFullSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams()),
		"yukta-supervised": p.SupervisedYuktaSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams()),
		"lqg-mono":         p.MonolithicLQG(),
		"lqg-decoupled":    p.DecoupledLQG(),
	}
}

func main() {
	var (
		app       = flag.String("app", "blackscholes", "workload name")
		scheme    = flag.String("scheme", "yukta-full", "controller scheme")
		trace     = flag.Bool("trace", false, "print ASCII power/performance traces")
		maxTime   = flag.Duration("max", 25*time.Minute, "simulation time budget")
		noise     = flag.Float64("noise", 0, "power-sensor noise std-dev in watts (failure injection)")
		faults    = flag.Float64("faults", 0, "fault-campaign intensity (0 = clean; 1 = harness's harshest default)")
		faultSeed = flag.Int64("faultseed", 1, "base seed of the injected fault campaign")
		record    = flag.String("record", "", "write the flight-recorder decision log to this JSONL path and print its timeline")
		engine    = flag.String("engine", "", "simulation engine: event (default) or lockstep; both are byte-identical in results and traces")
		list      = flag.Bool("list", false, "list workloads and schemes")
	)
	flag.Parse()

	eng, err := yukta.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if *list {
		fmt.Println("workloads:", yukta.EvaluationApps())
		fmt.Println("training: ", yukta.TrainingApps())
		fmt.Println("mixes:    blmc stga blst mcga")
		fmt.Println("schemes:  coordinated decoupled yukta-hw yukta-full yukta-supervised lqg-mono lqg-decoupled")
		return
	}

	fmt.Fprintln(os.Stderr, "building platform (identification + synthesis)...")
	p, err := yukta.NewDefaultPlatform()
	if err != nil {
		fatal(err)
	}
	sch, ok := schemes(p)[*scheme]
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q (see -list)", *scheme))
	}
	w, err := lookup(*app)
	if err != nil {
		fatal(err)
	}
	cfg := p.Cfg
	if *noise > 0 {
		cfg.SensorNoiseStd = *noise
		cfg.SensorNoiseSeed = 1
	}
	opt := yukta.RunOptions{MaxTime: *maxTime, Engine: eng}
	if *faults > 0 {
		opt.Faults = yukta.FaultPreset(*faultSeed, *faults)
	}
	var rec *yukta.FlightRecorder
	if *record != "" {
		rec = yukta.NewFlightRecorder(int(*maxTime/(500*time.Millisecond)) + 1)
		opt.Trace = rec
	}
	res, err := yukta.Run(cfg, sch, w, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("app=%s scheme=%q\n", res.App, res.Scheme)
	fmt.Printf("completed=%v time=%.1fs energy=%.1fJ ExD=%.0fJ·s emergencies=%d\n",
		res.Completed, res.TimeS, res.EnergyJ, res.ExD, res.EmergencyEvents)
	st := res.BigPower.Summarize()
	fmt.Printf("big power: mean=%.2fW max=%.2fW swings=%d\n", st.Mean, st.Max, st.Oscillations)
	if sup := res.Supervisor; sup != nil {
		fmt.Printf("supervisor: trips=%d recoveries=%d fallback=%.1fs\n",
			sup.Trips, sup.Recoveries, float64(sup.FallbackSteps)*res.IntervalS)
	}
	if fs := res.Faults; fs.DroppedReadings+fs.StaleReadings+fs.HeldCommands+fs.SkewedCommands+fs.ForcedThrottles > 0 {
		fmt.Printf("faults: dropped=%d stale=%d held=%d skewed=%d forcedTMU=%d\n",
			fs.DroppedReadings, fs.StaleReadings, fs.HeldCommands, fs.SkewedCommands, fs.ForcedThrottles)
	}
	if rec != nil {
		if err := writeRecord(*record, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", *record, rec.Len())
		fmt.Println(rec.Timeline(76))
	}
	if *trace {
		fmt.Println(res.BigPower.RenderASCII(76, 10))
		fmt.Println(res.Perf.RenderASCII(76, 10))
		fmt.Println(res.Temp.RenderASCII(76, 10))
	}
}

// writeRecord persists the flight recorder's decision log as JSONL.
func writeRecord(path string, rec *yukta.FlightRecorder) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rec.WriteJSONL(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// lookup resolves an app or mix name.
func lookup(name string) (yukta.Workload, error) {
	for _, m := range yukta.HeterogeneousMixes() {
		if m.Name() == name {
			return m, nil
		}
	}
	return yukta.LookupWorkload(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yukta-sim:", err)
	os.Exit(1)
}
