// Command yukta-sim runs one workload under one controller scheme on the
// simulated ODROID XU3 board and prints the measured outcome plus ASCII
// traces of power and performance.
//
// Usage:
//
//	yukta-sim -app blackscholes -scheme yukta-full
//	yukta-sim -app mcf -scheme coordinated -trace
//	yukta-sim -app gamess -scheme yukta-supervised -faults 2 -record run.jsonl
//	yukta-sim -list
//
// With -via, the same run executes inside a running yukta-serve daemon
// instead of in-process: the CLI creates a session, steps it to completion
// over HTTP, and prints the hosted result. Determinism survives hosting, so
// -record captures a trace byte-identical to the local run's:
//
//	yukta-sim -via http://localhost:8871 -app gamess -scheme yukta-supervised -faults 1 -record run.jsonl
//
// The hosted path rides the hardened internal/client: transient failures
// (daemon restart, rate limiting, the recovery fence after a crash) are
// retried with exponential backoff and jitter, and every step request
// carries an idempotency sequence number so a retry never double-advances
// the session.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"yukta"
	"yukta/internal/client"
	"yukta/internal/serve"
)

func schemes(p *yukta.Platform) map[string]yukta.Scheme {
	return map[string]yukta.Scheme{
		"coordinated":      p.CoordinatedHeuristic(),
		"decoupled":        p.DecoupledHeuristic(),
		"yukta-hw":         p.YuktaHWSSVOSHeuristic(yukta.DefaultHWParams()),
		"yukta-full":       p.YuktaFullSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams()),
		"yukta-supervised": p.SupervisedYuktaSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams()),
		"lqg-mono":         p.MonolithicLQG(),
		"lqg-decoupled":    p.DecoupledLQG(),
	}
}

func main() {
	var (
		app       = flag.String("app", "blackscholes", "workload name")
		scheme    = flag.String("scheme", "yukta-full", "controller scheme")
		trace     = flag.Bool("trace", false, "print ASCII power/performance traces")
		maxTime   = flag.Duration("max", 25*time.Minute, "simulation time budget")
		noise     = flag.Float64("noise", 0, "power-sensor noise std-dev in watts (failure injection)")
		faults    = flag.Float64("faults", 0, "fault-campaign intensity (0 = clean; 1 = harness's harshest default)")
		faultSeed = flag.Int64("faultseed", 1, "base seed of the injected fault campaign")
		record    = flag.String("record", "", "write the flight-recorder decision log to this JSONL path and print its timeline")
		engine    = flag.String("engine", "", "simulation engine: event (default) or lockstep; both are byte-identical in results and traces")
		via       = flag.String("via", "", "base URL of a running yukta-serve daemon; runs the session there instead of in-process")
		watch     = flag.Bool("watch", false, "with -via: stream the hosted session's live event feed and render each interval as it executes")
		list      = flag.Bool("list", false, "list workloads and schemes")
	)
	flag.Parse()

	eng, err := yukta.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if *list {
		fmt.Println("workloads:", yukta.EvaluationApps())
		fmt.Println("training: ", yukta.TrainingApps())
		fmt.Println("mixes:    blmc stga blst mcga")
		fmt.Println("schemes:  coordinated decoupled yukta-hw yukta-full yukta-supervised lqg-mono lqg-decoupled")
		return
	}

	if *via != "" {
		if *trace || *noise > 0 {
			fatal(fmt.Errorf("-trace and -noise are local-only; the hosted path runs scalar sessions"))
		}
		if err := runVia(*via, *scheme, *app, *engine, *maxTime, *faults, *faultSeed, *record, *watch); err != nil {
			fatal(err)
		}
		return
	}
	if *watch {
		fatal(fmt.Errorf("-watch streams a hosted session; pair it with -via"))
	}

	fmt.Fprintln(os.Stderr, "building platform (identification + synthesis)...")
	p, err := yukta.NewDefaultPlatform()
	if err != nil {
		fatal(err)
	}
	sch, ok := schemes(p)[*scheme]
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q (see -list)", *scheme))
	}
	w, err := lookup(*app)
	if err != nil {
		fatal(err)
	}
	cfg := p.Cfg
	if *noise > 0 {
		cfg.SensorNoiseStd = *noise
		cfg.SensorNoiseSeed = 1
	}
	opt := yukta.RunOptions{MaxTime: *maxTime, Engine: eng}
	if *faults > 0 {
		opt.Faults = yukta.FaultPreset(*faultSeed, *faults)
	}
	var rec *yukta.FlightRecorder
	if *record != "" {
		rec = yukta.NewFlightRecorder(int(*maxTime/(500*time.Millisecond)) + 1)
		opt.Trace = rec
	}
	res, err := yukta.Run(cfg, sch, w, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("app=%s scheme=%q\n", res.App, res.Scheme)
	fmt.Printf("completed=%v time=%.1fs energy=%.1fJ ExD=%.0fJ·s emergencies=%d\n",
		res.Completed, res.TimeS, res.EnergyJ, res.ExD, res.EmergencyEvents)
	st := res.BigPower.Summarize()
	fmt.Printf("big power: mean=%.2fW max=%.2fW swings=%d\n", st.Mean, st.Max, st.Oscillations)
	if sup := res.Supervisor; sup != nil {
		fmt.Printf("supervisor: trips=%d recoveries=%d fallback=%.1fs\n",
			sup.Trips, sup.Recoveries, float64(sup.FallbackSteps)*res.IntervalS)
	}
	if fs := res.Faults; fs.DroppedReadings+fs.StaleReadings+fs.HeldCommands+fs.SkewedCommands+fs.ForcedThrottles > 0 {
		fmt.Printf("faults: dropped=%d stale=%d held=%d skewed=%d forcedTMU=%d\n",
			fs.DroppedReadings, fs.StaleReadings, fs.HeldCommands, fs.SkewedCommands, fs.ForcedThrottles)
	}
	if rec != nil {
		if err := writeRecord(*record, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", *record, rec.Len())
		fmt.Println(rec.Timeline(76))
	}
	if *trace {
		fmt.Println(res.BigPower.RenderASCII(76, 10))
		fmt.Println(res.Perf.RenderASCII(76, 10))
		fmt.Println(res.Temp.RenderASCII(76, 10))
	}
}

// runVia executes the run inside a yukta-serve daemon: create a session with
// the same tuple the local path would use, step it to completion over HTTP,
// print the hosted result, and optionally download the trace. The daemon's
// trace is byte-identical to the local run's (the serve package's
// determinism gate), so -record output is interchangeable between paths.
// Steps ride the hardened client's idempotent retry loop, which also makes
// the drive survive a daemon crash-and-recover in the middle of the run.
func runVia(base, scheme, app, engine string, maxTime time.Duration, faults float64, faultSeed int64, record string, watch bool) error {
	c := client.New(client.Config{
		Base:       base,
		JitterSeed: time.Now().UnixNano(),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "yukta-sim: "+format+"\n", args...)
		},
	})
	req := serve.CreateRequest{
		Scheme:   scheme,
		App:      app,
		MaxTimeS: maxTime.Seconds(),
		Engine:   engine,
	}
	if faults > 0 {
		// The local path's -faults intensity is the full campaign: class
		// "all" on the hosted API.
		req.FaultClass = "all"
		req.FaultIntensity = faults
		req.FaultSeed = faultSeed
	}
	sess, info, err := c.CreateSession(req)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "session %s on %s\n", info.ID, base)

	var watchDone chan error
	var watchCancel context.CancelFunc
	if watch {
		var ctx context.Context
		ctx, watchCancel = context.WithCancel(context.Background())
		defer watchCancel()
		watchDone = make(chan error, 1)
		connected := make(chan struct{})
		go func() {
			watchDone <- sess.Watch(ctx, renderWatchRecord, client.WatchConnected(connected))
		}()
		// Don't step until the stream is attached, or the first intervals
		// (or, for a short run, the whole thing) would execute unwatched.
		select {
		case <-connected:
		case err := <-watchDone:
			return fmt.Errorf("watch stream failed to attach: %w", err)
		}
	}

	if _, err := sess.StepToDone(500); err != nil {
		return err
	}
	if watchDone != nil {
		// The server closes the stream with its done sentinel once the run
		// completes; give a wedged stream a bounded grace period.
		select {
		case err := <-watchDone:
			if err != nil {
				fmt.Fprintf(os.Stderr, "yukta-sim: watch stream: %v\n", err)
			}
		case <-time.After(30 * time.Second):
			watchCancel()
			fmt.Fprintln(os.Stderr, "yukta-sim: watch stream never finished; abandoned")
		}
	}

	fin, err := sess.Info()
	if err != nil {
		return err
	}
	fmt.Printf("app=%s scheme=%q (hosted)\n", fin.App, fin.Scheme)
	fmt.Printf("completed=%v time=%.1fs energy=%.1fJ ExD=%.0fJ·s emergencies=%d\n",
		fin.Result.Completed, fin.Result.TimeS, fin.Result.EnergyJ, fin.Result.ExDJS, fin.Result.Emergencies)
	if fin.SupState != "" {
		fmt.Printf("supervisor: trips=%d recoveries=%d state=%s\n",
			fin.Result.Trips, fin.Result.Recoveries, fin.SupState)
	}
	if fin.Result.FaultsInjected > 0 {
		fmt.Printf("faults injected: %d\n", fin.Result.FaultsInjected)
	}

	if record != "" {
		if dir := filepath.Dir(record); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		cErr := sess.WriteTrace(f)
		if err := f.Close(); cErr == nil {
			cErr = err
		}
		if cErr != nil {
			return cErr
		}
		st, err := os.Stat(record)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", record, st.Size())
	}
	// Free the daemon's session slot.
	return sess.Delete()
}

// renderWatchRecord prints one live interval from the -watch event stream as
// a compact timeline line. Each payload is a flight-record JSONL line
// (byte-identical to the /trace export), so only the displayed fields are
// decoded.
func renderWatchRecord(raw []byte) error {
	var rec struct {
		Step     int     `json:"step"`
		TimeS    float64 `json:"t_s"`
		BigW     float64 `json:"big_w"`
		LittleW  float64 `json:"little_w"`
		TempC    float64 `json:"temp_c"`
		BIPS     float64 `json:"bips"`
		SupState string  `json:"sup_state"`
		Tripped  bool    `json:"sup_tripped"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("undecodable watch record: %w", err)
	}
	line := fmt.Sprintf("watch step %4d  t=%7.1fs  P=%5.2fW  T=%5.1f°C  bips=%6.3f",
		rec.Step, rec.TimeS, rec.BigW+rec.LittleW, rec.TempC, rec.BIPS)
	if rec.SupState != "" {
		line += "  sup=" + rec.SupState
		if rec.Tripped {
			line += " TRIP"
		}
	}
	fmt.Fprintln(os.Stderr, line)
	return nil
}

// writeRecord persists the flight recorder's decision log as JSONL.
func writeRecord(path string, rec *yukta.FlightRecorder) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rec.WriteJSONL(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// lookup resolves an app or mix name.
func lookup(name string) (yukta.Workload, error) {
	for _, m := range yukta.HeterogeneousMixes() {
		if m.Name() == name {
			return m, nil
		}
	}
	return yukta.LookupWorkload(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yukta-sim:", err)
	os.Exit(1)
}
