package yukta

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// doclintPackages are the packages whose exported API must be fully
// documented: the public facade, the packages the fault-injection work
// turned into extension points, and the controller runtimes plus the
// supervisory layer above them.
var doclintPackages = []string{
	"control",
	"internal/board",
	"internal/fault",
	"internal/ssvctl",
	"internal/lqgctl",
	"internal/heuristic",
	"internal/supervisor",
	"internal/obs",
	"internal/series",
	"internal/fleet",
	"internal/pool",
	"internal/sched",
	"internal/serve",
	"internal/client",
}

// TestExportedIdentifiersDocumented fails on any exported identifier —
// top-level function, type, method, const/var, struct field or interface
// method — in doclintPackages that lacks a doc comment. It is a stdlib-only
// substitute for a godoc linter, so the documentation pass cannot rot
// silently.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range doclintPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.FromSlash(dir), func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				lintFile(t, fset, file)
			}
		}
	}
}

// hasDoc reports whether a doc comment group carries any text.
func hasDoc(g *ast.CommentGroup) bool { return g != nil && strings.TrimSpace(g.Text()) != "" }

// lintFile reports every undocumented exported identifier in one file.
func lintFile(t *testing.T, fset *token.FileSet, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, what, name string) {
		t.Errorf("%s: %s %s is exported but undocumented", fset.Position(pos), what, name)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if !hasDoc(d.Doc) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if !hasDoc(s.Doc) && !hasDoc(d.Doc) {
						report(s.Pos(), "type", s.Name.Name)
					}
					lintTypeBody(t, fset, s)
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						if !hasDoc(s.Doc) && !hasDoc(s.Comment) && !hasDoc(d.Doc) {
							report(name.Pos(), "const/var", name.Name)
						}
					}
				}
			}
		}
	}
}

// lintTypeBody checks exported struct fields and interface methods of an
// exported type.
func lintTypeBody(t *testing.T, fset *token.FileSet, s *ast.TypeSpec) {
	t.Helper()
	report := func(pos token.Pos, what, name string) {
		t.Errorf("%s: %s %s.%s is exported but undocumented", fset.Position(pos), what, s.Name.Name, name)
	}
	switch body := s.Type.(type) {
	case *ast.StructType:
		for _, f := range body.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() && !hasDoc(f.Doc) && !hasDoc(f.Comment) {
					report(name.Pos(), "field", name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range body.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() && !hasDoc(m.Doc) && !hasDoc(m.Comment) {
					report(name.Pos(), "interface method", name.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a declaration is a plain function or a
// method on an exported type (methods on unexported types are not API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr:
			typ = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}
