module yukta

go 1.22
