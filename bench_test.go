package yukta

// One benchmark per table and figure of the paper's evaluation (Section VI).
// Each benchmark regenerates its artifact through the experiment harness and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The figure benchmarks run a representative
// application subset per iteration to keep wall-clock reasonable; the
// cmd/yukta-bench tool runs the complete suites.

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"yukta/internal/exp"
	"yukta/internal/ssvctl"
)

var (
	benchOnce sync.Once
	benchCtx  *exp.Context
	benchErr  error
)

func benchContext(b *testing.B) *exp.Context {
	b.Helper()
	benchOnce.Do(func() {
		// YUKTA_BENCH_PARALLEL pins the harness worker count (0/unset =
		// NumCPU), so the parallel speedup can be measured:
		//   YUKTA_BENCH_PARALLEL=1 go test -bench=BenchmarkFig9aEnergyDelay .
		var opt exp.Options
		if v := os.Getenv("YUKTA_BENCH_PARALLEL"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				opt.Parallelism = n
			}
		}
		benchCtx, benchErr = exp.NewContextWithOptions(opt)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// benchApps is the representative subset used by the per-figure benchmarks.
var benchApps = []string{"gamess", "mcf", "blackscholes", "streamcluster"}

// BenchmarkFig9aEnergyDelay regenerates Figure 9(a): E×D of the four
// two-layer schemes, reporting Yukta's average normalized E×D.
func BenchmarkFig9aEnergyDelay(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exd, _, err := c.Fig9(benchApps)
		if err != nil {
			b.Fatal(err)
		}
		_, _, avg := exd.Averages("Yukta: HW SSV+OS SSV")
		b.ReportMetric(avg, "yuktaExD/baseline")
	}
}

// BenchmarkFig9bExecTime regenerates Figure 9(b): execution time.
func BenchmarkFig9bExecTime(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, times, err := c.Fig9(benchApps)
		if err != nil {
			b.Fatal(err)
		}
		_, _, avg := times.Averages("Yukta: HW SSV+OS SSV")
		b.ReportMetric(avg, "yuktaTime/baseline")
	}
}

// BenchmarkFig10PowerTrace regenerates Figure 10: big-cluster power traces
// of blackscholes, reporting the decoupled scheme's power swing count.
func BenchmarkFig10PowerTrace(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		tr, err := c.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tr.Series["Decoupled heuristic"].Summarize().Oscillations), "decoupledSwings")
	}
}

// BenchmarkFig11PerfTrace regenerates Figure 11: BIPS traces of
// blackscholes, reporting Yukta's completion time.
func BenchmarkFig11PerfTrace(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		tr, err := c.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		s := tr.Series["Yukta: HW SSV+OS SSV"]
		b.ReportMetric(s.T[len(s.T)-1], "yuktaCompletion_s")
	}
}

// BenchmarkFig12LQGEnergyDelay regenerates Figure 12: E×D of the LQG-based
// designs.
func BenchmarkFig12LQGEnergyDelay(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		exd, _, err := c.Fig12and13(benchApps)
		if err != nil {
			b.Fatal(err)
		}
		_, _, avg := exd.Averages("Monolithic LQG")
		b.ReportMetric(avg, "monoLQGExD/baseline")
	}
}

// BenchmarkFig13LQGExecTime regenerates Figure 13: execution time of the
// LQG-based designs.
func BenchmarkFig13LQGExecTime(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		_, times, err := c.Fig12and13(benchApps)
		if err != nil {
			b.Fatal(err)
		}
		_, _, avg := times.Averages("Monolithic LQG")
		b.ReportMetric(avg, "monoLQGTime/baseline")
	}
}

// BenchmarkFig14Heterogeneous regenerates Figure 14: E×D on the program
// mixes of §VI-C under every scheme.
func BenchmarkFig14Heterogeneous(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		exd, err := c.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		norm := exd.Normalized()["Yukta: HW SSV+OS SSV"]
		var avg float64
		for _, a := range exd.Apps {
			avg += norm[a]
		}
		b.ReportMetric(avg/float64(len(exd.Apps)), "yuktaMixExD/baseline")
	}
}

// BenchmarkFig15aBoundsTracking regenerates Figure 15(a): fixed-target
// tracking under three output-deviation-bound settings.
func BenchmarkFig15aBoundsTracking(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		tr, err := c.Fig15a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tr.Series["±20% (paper default)"].MeanAbove(40), "perfAtTarget_BIPS")
	}
}

// BenchmarkFig15bBoundsEnergyDelay regenerates Figure 15(b): E×D versus
// output deviation bounds.
func BenchmarkFig15bBoundsEnergyDelay(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		exd, err := c.Fig15b([]string{"blackscholes", "gamess"})
		if err != nil {
			b.Fatal(err)
		}
		_, _, avg := exd.Averages("Yukta ±20% (paper default)")
		b.ReportMetric(avg, "tightBoundsExD/baseline")
	}
}

// BenchmarkFig16aGuardbandBounds regenerates Figure 16(a): guaranteed
// deviation bounds versus uncertainty guardband (synthesis only).
func BenchmarkFig16aGuardbandBounds(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		points, err := c.Fig16a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[len(points)-1].BoundsGrowth, "boundsAt500pct")
	}
}

// BenchmarkFig16bGuardbandEnergyDelay regenerates Figure 16(b): E×D versus
// uncertainty guardband.
func BenchmarkFig16bGuardbandEnergyDelay(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		exd, err := c.Fig16b([]string{"blackscholes", "gamess"})
		if err != nil {
			b.Fatal(err)
		}
		_, _, avg := exd.Averages("Yukta ±40% guardband")
		b.ReportMetric(avg, "defaultGuardbandExD/baseline")
	}
}

// BenchmarkFig17InputWeights regenerates Figure 17: power tracking under
// input weights 0.5 / 1 / 2.
func BenchmarkFig17InputWeights(b *testing.B) {
	c := benchContext(b)
	for i := 0; i < b.N; i++ {
		tr, err := c.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tr.Series["input weights 0.5"].Summarize().Std, "w05PowerStd_W")
	}
}

// BenchmarkFleetStep measures one fleet run of the done-heavy scaling
// scenario (64 boards, half finishing early) per engine. The lockstep
// sub-benchmark pays a worker-pool barrier every control interval; the event
// sub-benchmark pays one per reallocation epoch and drops finished boards
// off the clock. Both produce identical simulation results — the CI smoke
// job runs this at -benchtime 1x to catch engine wall-clock regressions,
// alongside the N∈{64,256} scaling-curve guard (yukta-bench -fleetscale).
func BenchmarkFleetStep(b *testing.B) {
	c := benchContext(b)
	for _, engine := range []string{"lockstep", "event"} {
		b.Run(engine, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := c.FleetScaleRun(64, engine)
				if err != nil {
					b.Fatal(err)
				}
				if res.Steps == 0 {
					b.Fatal("fleet run executed no steps")
				}
				b.ReportMetric(float64(res.Steps), "clockSteps")
			}
		})
	}
}

// BenchmarkControllerStep measures one invocation of the hardware SSV
// controller's state machine — the §VI-D cost (the paper measures ≈28 µs on
// a Cortex-A7 and envisions a few-mW hardware state machine).
func BenchmarkControllerStep(b *testing.B) {
	c := benchContext(b)
	rt, err := c.NewHWStepRuntime()
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.SetTargets([]float64{6, 2.9, 0.25, 74}); err != nil {
		b.Fatal(err)
	}
	meas := []float64{5.5, 2.8, 0.2, 72}
	ext := []float64{6, 1.5, 1}
	applied := []float64{4, 4, 1.2, 1.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Step(meas, ext, applied); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerStepFixedPoint measures the §VI-D Q16.16 fixed-point
// realization of the same controller — the arithmetic the paper's few-mW
// hardware state machine would execute.
func BenchmarkControllerStepFixedPoint(b *testing.B) {
	c := benchContext(b)
	ctl, err := c.P.HWControllerValidated(exp.DefaultHWParamsForBench())
	if err != nil {
		b.Fatal(err)
	}
	fp, err := ssvctl.NewFixedPointController(ctl)
	if err != nil {
		b.Fatal(err)
	}
	dy := make([]float64, ctl.K.Inputs())
	for i := range dy {
		dy[i] = 0.1 * float64(i%3)
	}
	b.ReportMetric(float64(fp.Ops()), "fixedOps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fp.Step(dy); err != nil {
			b.Fatal(err)
		}
	}
}
