package yukta_test

// Compile-checked godoc examples for the public API. They carry no Output
// comments, so `go test` compiles but does not execute them (building the
// platform takes tens of seconds); the quickstart example under examples/
// is the runnable version.

import (
	"fmt"
	"log"

	"yukta"
	"yukta/control"
)

// Example shows the end-to-end flow: identification, synthesis, and a
// measured run of the full two-layer Yukta scheme.
func Example() {
	platform, err := yukta.NewDefaultPlatform()
	if err != nil {
		log.Fatal(err)
	}
	scheme := platform.YuktaFullSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams())
	app, _ := yukta.LookupWorkload("blackscholes")
	res, err := yukta.Run(platform.Cfg, scheme, app, yukta.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E×D = %.0f J·s in %.1f s\n", res.ExD, res.TimeS)
}

// Example_designReport inspects a synthesized controller's robustness
// certificate (the paper's min(s) and guaranteed deviation bounds).
func Example_designReport() {
	platform, err := yukta.NewDefaultPlatform()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := platform.HWControllerValidated(yukta.DefaultHWParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N=%d, SSV=%.2f, min(s)=%.2f, bounds=%v\n",
		ctl.Report.StateDim, ctl.Report.SSV, ctl.Report.MinS, ctl.Report.GuaranteedBounds)
}

// Example_customLayer designs an SSV controller for a user-defined layer
// with the control package (see examples/customlayer for a complete run).
func Example_customLayer() {
	data := &control.Dataset{} // filled from your layer's recorded signals
	model, err := control.Identify(data, control.PaperOrders, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	model.Stabilize()
	ctl, err := control.Synthesize(&control.Spec{
		Plant:        model.ReducedStateSpace(8),
		NumControls:  1,
		InputWeights: []float64{1},
		InputQuanta:  []float64{0.1},
		OutputBounds: []float64{0.4},
		Uncertainty:  0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ctl.Report.MinS >= 1)
}
