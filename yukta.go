// Package yukta is a pure-Go reproduction of "Yukta: Multilayer Resource
// Controllers to Maximize Efficiency" (Pothukuchi, Pothukuchi, Voulgaris,
// Torrellas — ISCA 2018): coordinated multilayer resource controllers built
// on Structured Singular Value (SSV) robust control.
//
// The package exposes the full pipeline the paper describes:
//
//   - a simulated ODROID XU3 big.LITTLE board with DVFS, hotplug, power and
//     thermal sensors, and firmware emergency heuristics (the prototype
//     platform of §IV–V);
//   - black-box System Identification of order-4 MIMO models (§IV-C);
//   - SSV controller synthesis with designer-specified input weights,
//     quantization, output deviation bounds and uncertainty guardbands
//     (§II–III), plus the LQG baseline of §VI-B;
//   - the two-layer hardware/OS controller stack with per-layer E×D
//     optimizers and external-signal coordination (§IV);
//   - the evaluation harness regenerating every table and figure of §VI.
//
// # Quick start
//
//	platform, err := yukta.NewDefaultPlatform()   // identification + models
//	if err != nil { ... }
//	scheme := platform.YuktaFullSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams())
//	app, _ := yukta.LookupWorkload("blackscholes")
//	result, err := yukta.Run(platform.Cfg, scheme, app, yukta.RunOptions{})
//	fmt.Printf("E×D = %.0f J·s in %.1f s\n", result.ExD, result.TimeS)
//
// The experiment harness lives in yukta/internal/exp and is driven by the
// cmd/yukta-bench tool; the lower layers (matrix algebra, LTI systems,
// robust synthesis, the board simulator) are importable internal packages.
package yukta

import (
	"io"

	"yukta/internal/board"
	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/robust"
	"yukta/internal/workload"
)

// Facade aliases: the public API re-exports the core types so downstream
// code imports a single package.
type (
	// Platform bundles the identified models and cached validated
	// controllers for one board configuration.
	Platform = core.Platform
	// Scheme is a named controller stack (Table IV of the paper).
	Scheme = core.Scheme
	// Session is one run's controller instance.
	Session = core.Session
	// RunResult is the outcome of one workload execution.
	RunResult = core.RunResult
	// RunOptions bounds a run.
	RunOptions = core.RunOptions
	// HWParams are the hardware controller's designer knobs (Table II).
	HWParams = core.HWParams
	// OSParams are the software controller's designer knobs (Table III).
	OSParams = core.OSParams
	// BoardConfig is the simulated ODROID XU3 configuration.
	BoardConfig = board.Config
	// IdentifyOptions configures the system-identification campaign.
	IdentifyOptions = core.IdentifyOptions
	// Controller is a synthesized SSV (or LQG) controller with its
	// robustness report.
	Controller = robust.Controller
	// Workload is a runnable application or mix.
	Workload = workload.Workload
	// FixedTargetSession runs the SSV layers with constant output targets
	// (the §VI-E1 experiments).
	FixedTargetSession = core.FixedTargetSession
	// FlightRecorder is the per-run control-loop decision log; attach one
	// via RunOptions.Trace and export with WriteJSONL/WriteCSV/Timeline.
	FlightRecorder = obs.Recorder
	// MetricsRegistry aggregates counters, gauges and latency histograms
	// across runs; attach one via RunOptions.Metrics.
	MetricsRegistry = obs.Registry
	// FaultPlan is a deterministic fault-injection campaign; attach one via
	// RunOptions.Faults.
	FaultPlan = fault.Plan
	// Engine selects the simulation core (EngineEvent or EngineLockstep);
	// set it via RunOptions.Engine. Both engines are byte-identical in every
	// observable output.
	Engine = core.Engine
)

// Simulation engines. EngineEvent (the default) advances the run on a
// shared-clock discrete-event heap; EngineLockstep is the reference
// per-interval loop kept for differential testing.
const (
	EngineEvent    = core.EngineEvent
	EngineLockstep = core.EngineLockstep
)

// ParseEngine validates an engine name ("", "event" or "lockstep") and
// returns the Engine it selects.
func ParseEngine(s string) (Engine, error) { return core.ParseEngine(s) }

// NewFlightRecorder returns a flight recorder holding the last capacity
// control intervals (obs.DefaultCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewRecorder(capacity) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// FaultPreset returns the paper-reproduction fault campaign at the given
// intensity (1.0 = the harness's harshest default grid point), seeded so
// identical runs see identical fault sequences.
func FaultPreset(seed int64, intensity float64) FaultPlan { return fault.Preset(seed, intensity) }

// ValidateTrace checks a JSONL flight-recorder stream against the record
// schema and returns the number of valid records.
func ValidateTrace(r io.Reader) (int, error) { return obs.ValidateJSONL(r) }

// DefaultBoardConfig returns the ODROID XU3 calibration (§IV).
func DefaultBoardConfig() BoardConfig { return board.DefaultConfig() }

// DefaultHWParams returns Table II's designer values.
func DefaultHWParams() HWParams { return core.DefaultHWParams() }

// DefaultOSParams returns Table III's designer values.
func DefaultOSParams() OSParams { return core.DefaultOSParams() }

// NewPlatform runs the identification experiments on the given board
// configuration and fits the controller design models.
func NewPlatform(cfg BoardConfig, opt IdentifyOptions) (*Platform, error) {
	return core.NewPlatform(cfg, opt)
}

// NewDefaultPlatform is NewPlatform with the default board and
// identification options.
func NewDefaultPlatform() (*Platform, error) {
	return core.NewPlatform(board.DefaultConfig(), core.DefaultIdentifyOptions())
}

// Run executes the workload under the scheme on a fresh simulated board.
func Run(cfg BoardConfig, sch Scheme, w Workload, opt RunOptions) (*RunResult, error) {
	return core.Run(cfg, sch, w, opt)
}

// LookupWorkload returns a fresh instance of a named benchmark application
// (see EvaluationApps and TrainingApps for the catalog).
func LookupWorkload(name string) (Workload, error) { return workload.Lookup(name) }

// EvaluationApps lists the paper's evaluation programs: SPEC CPU2006 first,
// then PARSEC (§V-A).
func EvaluationApps() []string {
	return append(workload.EvaluationSPEC(), workload.EvaluationPARSEC()...)
}

// TrainingApps lists the identification training programs (§V-A).
func TrainingApps() []string { return workload.TrainingSet() }

// HeterogeneousMixes returns the §VI-C program mixes (blmc, stga, blst,
// mcga) as runnable workloads.
func HeterogeneousMixes() []Workload {
	mixes := workload.HeterogeneousMixes()
	out := make([]Workload, len(mixes))
	for i, m := range mixes {
		out[i] = m
	}
	return out
}
