package yukta_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkcheckFiles are the markdown documents whose relative links must stay
// valid — the documentation map of README.md plus the docs/ tree.
var linkcheckFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	"docs/API.md",
	"docs/OPERATIONS.md",
}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// anchorSlug reproduces the GitHub heading-anchor algorithm closely enough
// for this repo's headings: lowercase, drop everything but letters, digits,
// spaces and dashes, then turn spaces into dashes.
func anchorSlug(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

// headingAnchors collects the anchor slugs of every markdown heading in the
// file, skipping fenced code blocks.
func headingAnchors(t *testing.T, path string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		anchors[anchorSlug(strings.TrimLeft(line, "# "))] = true
	}
	return anchors
}

// TestMarkdownRelativeLinks checks every relative link in the documentation
// set: the target file must exist, and a #fragment must name a real heading
// anchor in the target. External (scheme-prefixed) links are skipped — this
// is a hermetic test, not a crawler.
func TestMarkdownRelativeLinks(t *testing.T) {
	anchorCache := map[string]map[string]bool{}
	for _, file := range linkcheckFiles {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		inFence := false
		for ln, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				loc := fmt.Sprintf("%s:%d", file, ln+1)
				path, frag, _ := strings.Cut(target, "#")
				resolved := file
				if path != "" {
					resolved = filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
					if _, err := os.Stat(resolved); err != nil {
						t.Errorf("%s: broken relative link %q: %v", loc, target, err)
						continue
					}
				}
				if frag == "" {
					continue
				}
				if !strings.HasSuffix(resolved, ".md") {
					continue // fragments into non-markdown targets are not ours to judge
				}
				anchors, ok := anchorCache[resolved]
				if !ok {
					anchors = headingAnchors(t, resolved)
					anchorCache[resolved] = anchors
				}
				if !anchors[frag] {
					t.Errorf("%s: link %q points at missing anchor #%s in %s", loc, target, frag, resolved)
				}
			}
		}
	}
}
