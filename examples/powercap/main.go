// powercap demonstrates the basic use of a multilayer SSV controller (paper
// §III-C): meeting fixed output targets. The hardware controller is asked to
// hold the system at 5.5 BIPS / 2.5 W big-cluster power / 70 °C while the
// software controller holds its cluster performance split — the §VI-E1
// experiment. The program prints how closely each output tracks its target.
package main

import (
	"fmt"
	"log"
	"time"

	"yukta"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powercap: ")

	log.Println("building platform...")
	p, err := yukta.NewDefaultPlatform()
	if err != nil {
		log.Fatal(err)
	}

	// Fixed targets: [Perf BIPS, big power W, little power W, temp °C] for
	// the hardware layer; [little BIPS, big BIPS, ΔSpareCompute] for the
	// software layer.
	hwTargets := []float64{5.5, 2.5, 0.2, 70}
	hw, err := p.NewFixedHWSession(yukta.DefaultHWParams(), hwTargets)
	if err != nil {
		log.Fatal(err)
	}
	osS, err := p.NewFixedOSSession(yukta.DefaultOSParams(), []float64{1, 4.5, 1})
	if err != nil {
		log.Fatal(err)
	}
	sch := yukta.Scheme{Name: "fixed targets", New: func() (yukta.Session, error) {
		return &yukta.FixedTargetSession{HW: hw, OS: osS}, nil
	}}

	w, err := yukta.LookupWorkload("blackscholes")
	if err != nil {
		log.Fatal(err)
	}
	res, err := yukta.Run(p.Cfg, sch, w, yukta.RunOptions{MaxTime: 8 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tracking quality (mid-run, ignoring startup):")
	fmt.Printf("  performance: target %.1f BIPS, achieved %.2f BIPS\n", hwTargets[0], res.Perf.MeanAbove(40))
	fmt.Printf("  big power:   target %.1f W,    achieved %.2f W\n", hwTargets[1], res.BigPower.MeanAbove(40))
	fmt.Printf("  temperature: target %.0f °C,   achieved %.1f °C\n", hwTargets[3], res.Temp.MeanAbove(40))
	fmt.Println()
	fmt.Println(res.Perf.RenderASCII(72, 9))
}
