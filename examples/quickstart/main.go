// Quickstart: build the Yukta platform (system identification + SSV
// controller synthesis + validation), run the paper's showcase application
// under the full two-layer Yukta scheme, and compare it against the
// industry-style coordinated heuristic baseline.
package main

import (
	"fmt"
	"log"
	"os"

	"yukta"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Build the platform: this runs the §IV-C identification experiments
	//    on the simulated ODROID XU3 and fits the order-4 MIMO models.
	log.Println("identifying the board (training apps with staircase excitation)...")
	platform, err := yukta.NewDefaultPlatform()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Inspect the synthesized hardware controller: the design report
	//    carries the robustness certificate of §II-C.
	hw, err := platform.HWControllerValidated(yukta.DefaultHWParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware SSV controller: N=%d states, SSV=%.2f (min(s)=%.2f)\n",
		hw.Report.StateDim, hw.Report.SSV, hw.Report.MinS)

	// 3. Run blackscholes under both schemes and compare E×D.
	apps := []string{"blackscholes"}
	schemes := []yukta.Scheme{
		platform.CoordinatedHeuristic(),
		platform.YuktaFullSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams()),
	}
	var baseline float64
	for _, sch := range schemes {
		for _, app := range apps {
			w, err := yukta.LookupWorkload(app)
			if err != nil {
				log.Fatal(err)
			}
			res, err := yukta.Run(platform.Cfg, sch, w, yukta.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if baseline == 0 {
				baseline = res.ExD
			}
			fmt.Printf("%-28s %-13s time=%6.1fs energy=%6.1fJ ExD=%8.0fJ·s (%.2fx baseline)\n",
				sch.Name, app, res.TimeS, res.EnergyJ, res.ExD, res.ExD/baseline)
		}
	}
	os.Exit(0)
}
