// threelayer demonstrates the paper's §III-D scaling story: adding a third
// controller layer on top of the two-layer Yukta prototype. The new layer is
// an application-level battery-saver: it resizes the app's thread pool (its
// input) to hold the *total* platform power at a user budget while watching
// total performance (its outputs), taking the hardware layer's big-cluster
// frequency as an external signal from the neighboring layer below — layers
// communicate only with their neighbors (§III-D).
//
// The demo follows the full Figure 3 flow for the new layer: identify a
// model with the two lower layers running, synthesize an SSV controller with
// a guardband covering the lower layers' interference, and run the
// three-layer stack, checking that total power tracks the budget that the
// two-layer stack (which optimizes E×D unconstrained) exceeds.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"yukta"
	"yukta/control"
	"yukta/internal/board"
	"yukta/internal/workload"
)

const ts = 0.5

func main() {
	log.SetFlags(0)
	log.SetPrefix("threelayer: ")

	log.Println("building the two lower layers (identification + synthesis)...")
	p, err := yukta.NewDefaultPlatform()
	if err != nil {
		log.Fatal(err)
	}

	// ---- 1. Identify the application layer's model: thread cap → (BIPS,
	// total power), with the Yukta two-layer stack running underneath and
	// the big frequency observed as an external signal.
	capScale := control.Scaling{Min: 1, Max: 8}
	bipsScale := control.Scaling{Min: 0, Max: 12}
	powScale := control.Scaling{Min: 0, Max: 6}
	freqScale := control.Scaling{Min: 0.2, Max: 2.0}

	log.Println("identifying the application layer (staircase on the thread cap)...")
	rng := rand.New(rand.NewSource(99))
	data := &control.Dataset{}
	sch := p.YuktaFullSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams())
	sess, err := sch.New()
	if err != nil {
		log.Fatal(err)
	}
	b := board.New(p.Cfg)
	capped := workload.NewCapped(workload.MustLookup("milc")) // training app
	level := 8
	for i := 0; i < 360 && !capped.Done(); i++ {
		if i%4 == 0 {
			level = 1 + rng.Intn(8)
			capped.SetCap(level)
		}
		s := b.Run(capped, 500*time.Millisecond)
		sess.Step(s, b, capped.Profile().Threads)
		data.Append(
			[]float64{capScale.Normalize(float64(level)), freqScale.Normalize(b.EffectiveBigFreq())},
			[]float64{bipsScale.Normalize(s.BIPS), powScale.Normalize(s.BigPowerW + s.LittlePowerW + p.Cfg.BasePowerW)},
		)
	}
	model, err := control.Identify(data, control.PaperOrders, ts)
	if err != nil {
		log.Fatal(err)
	}
	model.Stabilize()

	// ---- 2. Synthesize the application-layer SSV controller. The large
	// guardband absorbs the two lower controllers' interference (§III-B).
	ctl, err := control.Synthesize(&control.Spec{
		Plant:        model.ReducedStateSpace(8),
		NumControls:  1, // the thread cap; frequency is external
		InputWeights: []float64{2},
		InputQuanta:  []float64{capScale.QuantumNormalized(1)},
		OutputBounds: []float64{0.4, 0.4},
		Uncertainty:  0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application-layer SSV controller: N=%d, SSV=%.2f\n",
		ctl.Report.StateDim, ctl.Report.SSV)

	rt, err := control.NewRuntime(control.RuntimeConfig{
		Controller:     ctl,
		OutputScales:   []control.Scaling{bipsScale, powScale},
		ExternalScales: []control.Scaling{freqScale},
		InputScales:    []control.Scaling{capScale},
		InputLevels:    [][]float64{control.Levels(1, 8, 1)},
		SlewLevels:     []int{1},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Application-level goal: a 3.2 W total power budget (battery saver),
	// with a permissive performance target so power dominates.
	const powerBudget = 3.2
	if err := rt.SetTargets([]float64{3.5, powerBudget}); err != nil {
		log.Fatal(err)
	}

	// ---- 3. Compare: two-layer stack (unconstrained E×D) vs three-layer
	// stack (power held at the budget) on the compute-bound gamess.
	run := func(threeLayer bool) (meanPower, timeS float64) {
		sess, err := sch.New()
		if err != nil {
			log.Fatal(err)
		}
		b := board.New(p.Cfg)
		w := workload.NewCapped(workload.MustLookup("gamess"))
		var powerSum float64
		var n int
		for i := 0; i < 2400 && !w.Done(); i++ {
			s := b.Run(w, 500*time.Millisecond)
			sess.Step(s, b, w.Profile().Threads)
			total := s.BigPowerW + s.LittlePowerW + p.Cfg.BasePowerW
			if threeLayer {
				u, err := rt.Step(
					[]float64{s.BIPS, total},
					[]float64{b.EffectiveBigFreq()},
					[]float64{float64(w.Cap())},
				)
				if err != nil {
					log.Fatal(err)
				}
				w.SetCap(int(math.Round(u[0])))
			}
			if i >= 40 { // skip the settle-in phase
				powerSum += total
				n++
			}
		}
		return powerSum / float64(n), b.TimeS()
	}

	p2, t2 := run(false)
	p3, t3 := run(true)
	fmt.Printf("two layers (unconstrained): total power %.2f W, %6.1f s\n", p2, t2)
	fmt.Printf("three layers (%.1f W budget): total power %.2f W, %6.1f s\n", powerBudget, p3, t3)
	if math.Abs(p3-powerBudget) < math.Abs(p2-powerBudget) {
		fmt.Println("the application layer holds the power budget by trimming the")
		fmt.Println("thread pool, coordinating with the layers below through the")
		fmt.Println("frequency external signal — the §III-D multilayer vision.")
	} else {
		fmt.Println("WARNING: the application layer failed to improve budget tracking")
	}
}
