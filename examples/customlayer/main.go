// customlayer shows how to design an SSV controller for a layer Yukta does
// not ship — the paper's §III-D scaling story. The example builds a toy
// "network layer": a link whose send rate and compression level control the
// observed throughput and the NIC power, with the CPU frequency arriving as
// an external signal from the hardware layer below.
//
// The workflow is the paper's Figure 3: describe the signals, identify a
// model from recorded data, exchange interface information (here: the
// external signal's range), synthesize with a guardband, and run the
// resulting state machine.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"yukta/control"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("customlayer: ")

	// ---- 1. The "true" layer we want to control (normally: your system).
	// Inputs: send rate (0..100 Mb/s, steps of 5), compression (0..4).
	// External: CPU frequency from the HW layer (0.2..2.0 GHz).
	// Outputs: goodput (Mb/s), NIC power (W).
	plant := func(state []float64, rate, comp, cpu float64) (goodput, power float64, next []float64) {
		// First-order link dynamics with compression trading power for
		// effective bandwidth, and the CPU frequency limiting compression
		// throughput.
		eff := rate * (1 + 0.15*comp*cpu/2.0)
		goodput = 0.7*state[0] + 0.3*eff*0.9
		power = 0.5 + 0.02*rate + 0.3*comp*(0.5+cpu/2)
		return goodput, power, []float64{goodput}
	}

	// ---- 2. Identification: excite the inputs, record the outputs.
	rng := rand.New(rand.NewSource(42))
	rateScale := control.Scaling{Min: 0, Max: 100}
	compScale := control.Scaling{Min: 0, Max: 4}
	cpuScale := control.Scaling{Min: 0.2, Max: 2.0}
	goodScale := control.Scaling{Min: 0, Max: 120}
	powScale := control.Scaling{Min: 0, Max: 4}

	data := &control.Dataset{}
	state := []float64{0}
	for t := 0; t < 600; t++ {
		rate := float64(rng.Intn(21)) * 5
		comp := float64(rng.Intn(5))
		cpu := 0.2 + 0.1*float64(rng.Intn(19))
		goodput, power, next := plant(state, rate, comp, cpu)
		state = next
		data.Append(
			[]float64{rateScale.Normalize(rate), compScale.Normalize(comp), cpuScale.Normalize(cpu)},
			[]float64{goodScale.Normalize(goodput), powScale.Normalize(power)},
		)
	}
	model, err := control.Identify(data, control.PaperOrders, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	model.Stabilize()
	fmt.Printf("identified order-4 model: %d states before reduction\n", model.StateSpace().Order())

	// ---- 3. Synthesis: Table II/III-style specification for this layer.
	spec := &control.Spec{
		Plant:        model.ReducedStateSpace(8),
		NumControls:  2, // send rate, compression; CPU frequency is external
		InputWeights: []float64{1, 1},
		InputQuanta: []float64{
			rateScale.QuantumNormalized(5),
			compScale.QuantumNormalized(1),
		},
		OutputBounds: []float64{0.4, 0.2}, // ±20% goodput, ±10% power (of range)
		Uncertainty:  0.4,                 // ±40% guardband
	}
	ctl, err := control.Synthesize(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized SSV controller: N=%d, SSV=%.2f (min(s)=%.2f)\n",
		ctl.Report.StateDim, ctl.Report.SSV, ctl.Report.MinS)

	// ---- 4. Runtime: close the loop on the true plant.
	rt, err := control.NewRuntime(control.RuntimeConfig{
		Controller:     ctl,
		OutputScales:   []control.Scaling{goodScale, powScale},
		ExternalScales: []control.Scaling{cpuScale},
		InputScales:    []control.Scaling{rateScale, compScale},
		InputLevels: [][]float64{
			control.Levels(0, 100, 5),
			control.Levels(0, 4, 1),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.SetTargets([]float64{60, 1.5}); err != nil { // 60 Mb/s at 1.5 W
		log.Fatal(err)
	}

	state = []float64{0}
	rate, comp := 50.0, 2.0
	cpu := 1.2 // external signal from the layer below
	var goodput, power float64
	for t := 0; t < 120; t++ {
		goodput, power, state = plant(state, rate, comp, cpu)
		u, err := rt.Step([]float64{goodput, power}, []float64{cpu}, []float64{rate, comp})
		if err != nil {
			log.Fatal(err)
		}
		rate, comp = u[0], u[1]
		if t%20 == 19 {
			fmt.Printf("t=%3d goodput=%5.1f Mb/s (target 60)  power=%.2f W (target 1.5)  rate=%.0f comp=%.0f\n",
				t+1, goodput, power, rate, comp)
		}
	}
	fmt.Println("done: the network layer tracks its targets with quantized actuators.")
}
