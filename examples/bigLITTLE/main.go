// bigLITTLE compares all six controller schemes on a mixed set of
// applications — the Figure 9 / Figure 12 experiment in miniature — and
// prints the normalized E×D table plus the power trace of the best and
// worst schemes.
package main

import (
	"fmt"
	"log"

	"yukta"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bigLITTLE: ")

	log.Println("building platform...")
	p, err := yukta.NewDefaultPlatform()
	if err != nil {
		log.Fatal(err)
	}

	apps := []string{"gamess", "mcf", "blackscholes"}
	schemes := []yukta.Scheme{
		p.CoordinatedHeuristic(),
		p.DecoupledHeuristic(),
		p.YuktaHWSSVOSHeuristic(yukta.DefaultHWParams()),
		p.YuktaFullSSV(yukta.DefaultHWParams(), yukta.DefaultOSParams()),
		p.DecoupledLQG(),
		p.MonolithicLQG(),
	}

	baseline := map[string]float64{}
	results := map[string]map[string]*yukta.RunResult{}
	for _, sch := range schemes {
		results[sch.Name] = map[string]*yukta.RunResult{}
		for _, app := range apps {
			w, err := yukta.LookupWorkload(app)
			if err != nil {
				log.Fatal(err)
			}
			res, err := yukta.Run(p.Cfg, sch, w, yukta.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			results[sch.Name][app] = res
			if sch.Name == "Coordinated heuristic" {
				baseline[app] = res.ExD
			}
		}
	}

	fmt.Printf("%-28s", "E×D vs baseline")
	for _, app := range apps {
		fmt.Printf("%14s", app)
	}
	fmt.Println()
	for _, sch := range schemes {
		fmt.Printf("%-28s", sch.Name)
		for _, app := range apps {
			fmt.Printf("%13.2fx", results[sch.Name][app].ExD/baseline[app])
		}
		fmt.Println()
	}

	fmt.Println("\nbig-cluster power, blackscholes, Yukta full vs decoupled heuristic:")
	fmt.Println(results["Yukta: HW SSV+OS SSV"]["blackscholes"].BigPower.RenderASCII(72, 8))
	fmt.Println(results["Decoupled heuristic"]["blackscholes"].BigPower.RenderASCII(72, 8))
}
